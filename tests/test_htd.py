"""Tests for hypertree decompositions (the descendant condition)."""

import random

import pytest

from repro.decomposition.htd import (
    HypertreeDecomposition,
    htd_from_ordering,
    hypertree_width_upper_bound,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    grid2d_hypergraph,
    random_hypergraph,
)
from repro.search import branch_and_bound_ghw
from tests.conftest import make_covered_hypergraph


class TestValidator:
    def test_valid_example(self, example_hypergraph):
        htd = HypertreeDecomposition(root="p1")
        htd.add_node("p1", bag={"x1", "x3", "x5"}, cover={"C1", "C3"})
        htd.add_node("p2", bag={"x1", "x2", "x3"}, cover={"C1"})
        htd.add_node("p3", bag={"x3", "x4", "x5"}, cover={"C3"})
        htd.add_node("p4", bag={"x1", "x5", "x6"}, cover={"C2"})
        htd.add_tree_edge("p1", "p2")
        htd.add_tree_edge("p1", "p3")
        htd.add_tree_edge("p1", "p4")
        # p1 uses C1 whose x2 appears in p2's bag (below p1) but not in
        # p1's bag -> descendant condition violated at p1.
        problems = htd.violations(example_hypergraph)
        assert any("descendant" in p for p in problems)

    def test_descendant_condition_satisfied(self, example_hypergraph):
        htd = HypertreeDecomposition(root="p2")
        # Rooting at p2 moves the C1 leak above: check a construction
        # where every λ-var below each node is in its bag.
        htd.add_node("p2", bag={"x1", "x2", "x3"}, cover={"C1"})
        htd.add_node("p1", bag={"x1", "x3", "x5"}, cover={"C1", "C3"})
        htd.add_node("p3", bag={"x3", "x4", "x5"}, cover={"C3"})
        htd.add_node("p4", bag={"x1", "x5", "x6"}, cover={"C2"})
        htd.add_tree_edge("p2", "p1")
        htd.add_tree_edge("p1", "p3")
        htd.add_tree_edge("p1", "p4")
        # p1 covers with C1 = {x1,x2,x3}; x2 does not occur below p1;
        # C3 = {x3,x4,x5}; x4 occurs below in p3... and x4 ∉ χ(p1): leak!
        problems = htd.violations(example_hypergraph)
        assert any("descendant" in p for p in problems) == ("x4" not in
                                                            {"x1", "x3", "x5"})

    def test_single_node_never_leaks(self):
        h = Hypergraph(edges={"e": {1, 2, 3}})
        htd = HypertreeDecomposition(root="n")
        htd.add_node("n", bag={1, 2, 3}, cover={"e"})
        assert htd.violations(h) == []

    def test_copy_keeps_root(self):
        htd = HypertreeDecomposition(root="r")
        htd.add_node("r", bag={1}, cover=())
        assert htd.copy().root == "r"


class TestConstructor:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: adder_hypergraph(6),
            lambda: clique_hypergraph(8),
            lambda: grid2d_hypergraph(4),
        ],
    )
    def test_produces_valid_htd(self, builder, example_hypergraph):
        for h in (builder(), example_hypergraph):
            ordering = h.vertex_list()
            htd = htd_from_ordering(h, ordering)
            assert htd.violations(h) == [], h

    @pytest.mark.parametrize("seed", range(10))
    def test_random_hypergraphs(self, seed):
        h = make_covered_hypergraph(8, 10, seed=seed + 11000)
        ordering = h.vertex_list()
        random.Random(seed).shuffle(ordering)
        htd = htd_from_ordering(h, ordering)
        assert htd.violations(h) == [], seed

    @pytest.mark.parametrize("seed", range(6))
    def test_hw_ub_at_least_ghw(self, seed):
        """ghw(H) <= hw(H) <= our upper bound."""
        h = make_covered_hypergraph(6, 8, seed=seed + 11100)
        ghw = branch_and_bound_ghw(h).width
        hw_ub = hypertree_width_upper_bound(h, h.vertex_list())
        assert hw_ub >= ghw

    def test_acyclic_hypergraph_width_one(self):
        # A path hypergraph is acyclic: hw = 1, and a good ordering
        # finds it.
        h = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {3, 4}})
        hw_ub = hypertree_width_upper_bound(h, [1, 4, 2, 3])
        assert hw_ub <= 2  # small; = 1 with the perfect ordering
        best = min(
            hypertree_width_upper_bound(h, list(p))
            for p in __import__("itertools").permutations([1, 2, 3, 4])
        )
        assert best == 1

    def test_empty(self):
        h = Hypergraph()
        htd = htd_from_ordering(h, [])
        assert htd.num_nodes == 0
