"""Unit tests for the instance generators."""

import pytest

from repro.hypergraph.generators import (
    adder_hypergraph,
    bridge_hypergraph,
    clique_hypergraph,
    complete_graph,
    cycle_graph,
    grid2d_hypergraph,
    grid3d_hypergraph,
    grid_graph,
    myciel_graph,
    mycielski,
    path_graph,
    queen_graph,
    random_circuit_hypergraph,
    random_geometric_graph,
    random_gnm_graph,
    random_gnp_graph,
    random_hypergraph,
    random_interval_graph,
    random_partitioned_graph,
    sat_hypergraph,
    star_graph,
)


class TestBasicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert (g.num_vertices, g.num_edges) == (5, 4)
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert all(g.degree(v) == 2 for v in g)
        assert g.num_edges == 6

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert g.num_edges == 4

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # verticals + horizontals

    def test_square_grid_edges(self):
        for n in (2, 3, 5):
            g = grid_graph(n)
            assert g.num_edges == 2 * n * (n - 1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            grid_graph(0)
        with pytest.raises(ValueError):
            path_graph(0)


class TestQueenAndMyciel:
    def test_queen5_counts(self):
        g = queen_graph(5)
        # DIMACS queen5_5 lists 320 directed edges = 160 simple ones.
        assert (g.num_vertices, g.num_edges) == (25, 160)

    def test_queen_adjacency_rules(self):
        g = queen_graph(4)
        assert g.has_edge((0, 0), (0, 3))  # row
        assert g.has_edge((0, 0), (3, 0))  # column
        assert g.has_edge((0, 0), (3, 3))  # diagonal
        assert not g.has_edge((0, 1), (1, 3))  # knight move

    def test_mycielski_growth(self):
        g = complete_graph(2)
        m = mycielski(g)
        assert m.num_vertices == 2 * g.num_vertices + 1
        assert m.num_edges == 3 * g.num_edges + g.num_vertices

    def test_myciel_dimacs_counts(self):
        expected = {3: (11, 20), 4: (23, 71), 5: (47, 236), 6: (95, 755)}
        for k, (v, e) in expected.items():
            g = myciel_graph(k)
            assert (g.num_vertices, g.num_edges) == (v, e), k

    def test_myciel_triangle_free_small(self):
        g = myciel_graph(3)  # Grötzsch graph is triangle-free
        vertices = g.vertex_list()
        for i, a in enumerate(vertices):
            for b in vertices[i + 1:]:
                if g.has_edge(a, b):
                    assert not (g.neighbors(a) & g.neighbors(b))


class TestRandomFamilies:
    def test_gnm_exact_counts(self):
        g = random_gnm_graph(30, 100, seed=7)
        assert (g.num_vertices, g.num_edges) == (30, 100)

    def test_gnm_deterministic(self):
        a = random_gnm_graph(20, 50, seed=3)
        b = random_gnm_graph(20, 50, seed=3)
        assert a == b

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            random_gnm_graph(4, 7, seed=0)

    def test_gnp_bounds(self):
        g = random_gnp_graph(25, 0.3, seed=1)
        assert g.num_vertices == 25
        with pytest.raises(ValueError):
            random_gnp_graph(5, 1.5, seed=0)

    def test_geometric_exact_counts(self):
        g = random_geometric_graph(40, 120, seed=5)
        assert (g.num_vertices, g.num_edges) == (40, 120)

    def test_partitioned_no_intra_part_edges(self):
        g = random_partitioned_graph(30, 60, parts=5, seed=9)
        assert g.num_edges == 60
        for u, v in g.edges():
            assert u % 5 != v % 5

    def test_interval_counts(self):
        g = random_interval_graph(60, 150, seed=11)
        assert (g.num_vertices, g.num_edges) == (60, 150)


class TestHypergraphFamilies:
    def test_clique_hypergraph(self):
        h = clique_hypergraph(20)
        assert (h.num_vertices, h.num_edges) == (20, 190)
        assert h.rank() == 2

    def test_grid2d_counts(self):
        h = grid2d_hypergraph(20)
        assert (h.num_vertices, h.num_edges) == (200, 200)
        assert h.rank() <= 4

    def test_grid3d_counts(self):
        h = grid3d_hypergraph(8)
        assert (h.num_vertices, h.num_edges) == (256, 256)
        assert h.rank() <= 6

    def test_adder_counts(self):
        for n in (5, 75, 99):
            h = adder_hypergraph(n)
            assert (h.num_vertices, h.num_edges) == (5 * n + 1, 7 * n + 1), n
            assert not h.isolated_vertices()

    def test_bridge_counts(self):
        for n in (5, 50):
            h = bridge_hypergraph(n)
            assert (h.num_vertices, h.num_edges) == (9 * n + 2, 9 * n + 2), n
            assert not h.isolated_vertices()

    def test_adder_connected_primal(self):
        primal = adder_hypergraph(10).primal_graph()
        assert len(primal.connected_components()) == 1

    def test_bridge_connected_primal(self):
        primal = bridge_hypergraph(10).primal_graph()
        assert len(primal.connected_components()) == 1

    def test_circuit_standins_match_counts(self):
        h = random_circuit_hypergraph(48, 50, seed=2)
        assert h.num_vertices == 48
        assert h.num_edges >= 50  # stray-vertex edges may add a few
        assert not h.isolated_vertices()

    def test_random_hypergraph(self):
        h = random_hypergraph(10, 15, seed=1, min_arity=2, max_arity=4)
        assert h.num_edges == 15
        assert all(2 <= len(e) <= 4 for e in h.edges.values())

    def test_sat_hypergraph(self):
        h = sat_hypergraph([[-1, 2, 3], [1, -4], [-3, -5]])
        assert h.num_edges == 3
        assert h.edge("cl0") == frozenset({1, 2, 3})

    def test_sat_hypergraph_empty_clause(self):
        with pytest.raises(ValueError):
            sat_hypergraph([[1], []])
