"""Differential testing: independent solvers must agree.

Hypothesis generates random graphs and hypergraphs; on each one the
exact solvers (A*, branch and bound, the deterministic portfolio) must
report the same width — and that width must match the brute-force
oracle where the instance is small enough to enumerate.  Heuristic
upper bounds (GA, min-fill) may be loose but must never undercut the
exact width; proven lower bounds must never exceed it.
"""

import random

from hypothesis import given, settings, strategies as st

from tests.conftest import make_covered_hypergraph, random_graphs
from repro.bounds import minor_gamma_r, minor_min_width
from repro.bounds.upper import best_heuristic_ordering
from repro.decomposition import ghw_ordering_width
from repro.genetic import GAParameters, ga_ghw, ga_treewidth
from repro.hypergraph import Graph, Hypergraph
from repro.portfolio import run_portfolio
from repro.search import (
    astar_ghw,
    astar_treewidth,
    branch_and_bound_ghw,
    branch_and_bound_treewidth,
    brute_force_ghw,
    brute_force_treewidth,
)

GA_SMALL = GAParameters(population_size=8, generations=5)


@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    return g


@st.composite
def covered_hypergraphs(draw, max_vertices=6, max_edges=6):
    """Random hypergraphs without isolated vertices (ghw needs every
    vertex covered by an edge)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(3, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(members)
    h = Hypergraph.from_edges(edges) if edges else Hypergraph()
    for v in range(n):
        if v not in h or v in h.isolated_vertices():
            h.add_edge({v, (v + 1) % n}, name=f"cover{v}")
    return h


# ----------------------------------------------------------------------
# Treewidth: exact solvers agree, and match the oracle
# ----------------------------------------------------------------------

class TestTreewidthAgreement:
    @settings(max_examples=25, deadline=None)
    @given(graphs())
    def test_astar_bb_and_oracle_agree(self, g):
        astar = astar_treewidth(g.copy())
        bb = branch_and_bound_treewidth(g.copy())
        assert astar.exact and bb.exact
        assert astar.upper_bound == bb.upper_bound
        assert astar.upper_bound == brute_force_treewidth(g)

    @settings(max_examples=25, deadline=None)
    @given(graphs())
    def test_upper_bounds_never_undercut_exact(self, g):
        tw = brute_force_treewidth(g)
        rng = random.Random(0)
        _, heuristic_ub = best_heuristic_ordering(g.copy(), rng)
        assert heuristic_ub >= tw
        ga = ga_treewidth(g.copy(), GA_SMALL, rng=random.Random(1))
        assert ga.best_fitness >= tw

    @settings(max_examples=25, deadline=None)
    @given(graphs())
    def test_lower_bounds_never_exceed_exact(self, g):
        tw = brute_force_treewidth(g)
        rng = random.Random(0)
        assert minor_min_width(g.copy(), rng) <= tw
        assert minor_gamma_r(g.copy(), rng) <= tw

    def test_fixed_batch_cross_checks(self):
        # A deterministic batch (no hypothesis shrink churn) over
        # slightly larger graphs than the strategy generates.
        for g in random_graphs(8, max_n=11, seed=42):
            astar = astar_treewidth(g.copy())
            bb = branch_and_bound_treewidth(g.copy())
            assert astar.exact and bb.exact
            assert astar.upper_bound == bb.upper_bound


class TestPortfolioAgreement:
    def test_deterministic_portfolio_matches_astar(self):
        # Two fixed seeds: the deterministic portfolio's witnessed width
        # equals the exact treewidth (its exact backends finish within
        # the node budget at this size).
        for seed, g in enumerate(random_graphs(2, max_n=9, seed=7)):
            exact = astar_treewidth(g.copy())
            result = run_portfolio(
                g,
                backends=["astar-tw", "min-fill"],
                jobs=1,
                deterministic=True,
                max_nodes=200_000,
                seed=seed,
            )
            assert exact.exact
            assert result.upper_bound == exact.upper_bound
            assert result.lower_bound <= exact.upper_bound


# ----------------------------------------------------------------------
# ghw: exact solvers agree, and match the oracle
# ----------------------------------------------------------------------

class TestGhwAgreement:
    @settings(max_examples=15, deadline=None)
    @given(covered_hypergraphs())
    def test_astar_bb_and_oracle_agree(self, h):
        astar = astar_ghw(h.copy())
        bb = branch_and_bound_ghw(h.copy())
        assert astar.exact and bb.exact
        assert astar.upper_bound == bb.upper_bound
        assert astar.upper_bound == brute_force_ghw(h)

    @settings(max_examples=10, deadline=None)
    @given(covered_hypergraphs(max_vertices=5, max_edges=5))
    def test_ga_and_ordering_bounds_never_undercut(self, h):
        ghw = brute_force_ghw(h)
        rng = random.Random(0)
        ordering, _ = best_heuristic_ordering(h, rng)
        assert ghw_ordering_width(h, list(ordering)) >= ghw
        ga = ga_ghw(h, GA_SMALL, rng=random.Random(1))
        assert ga.best_fitness >= ghw

    def test_fixed_batch_cross_checks(self):
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed)
            astar = astar_ghw(h.copy())
            bb = branch_and_bound_ghw(h.copy())
            assert astar.exact and bb.exact
            assert astar.upper_bound == bb.upper_bound
            assert astar.upper_bound == brute_force_ghw(h)
