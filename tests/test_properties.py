"""Property-based tests (hypothesis) for the core invariants listed in
DESIGN.md."""

import random

from hypothesis import given, settings, strategies as st

from repro.bounds import (
    min_fill_ordering,
    minor_gamma_r,
    minor_min_width,
    treewidth_upper_bound,
)
from repro.decomposition import (
    bucket_elimination,
    elimination_bags,
    ghw_ordering_width,
    ordering_from_decomposition,
    ordering_width,
    transform_leaf_normal_form,
    vertex_elimination,
)
from repro.genetic import CROSSOVER_OPERATORS, MUTATION_OPERATORS
from repro.hypergraph import Graph, Hypergraph
from repro.search import brute_force_treewidth
from repro.setcover import exact_set_cover, greedy_set_cover


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    ) if possible else []
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    return g


@st.composite
def graphs_with_ordering(draw, max_vertices=9):
    g = draw(graphs(max_vertices))
    ordering = draw(st.permutations(g.vertex_list()))
    return g, list(ordering)


@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(members)
    h = Hypergraph(vertices=range(n))
    for i, members in enumerate(edges):
        h.add_edge(members, name=f"e{i}")
    # cover isolated vertices so ghw machinery applies
    for v in sorted(h.isolated_vertices()):
        h.add_edge({v}, name=f"iso{v}")
    return h


# ----------------------------------------------------------------------
# Elimination invariants
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(graphs_with_ordering())
def test_bucket_elimination_is_valid_td(data):
    g, ordering = data
    td = bucket_elimination(g, ordering)
    assert td.is_valid(g)


@settings(max_examples=60, deadline=None)
@given(graphs_with_ordering())
def test_bucket_equals_vertex_elimination(data):
    g, ordering = data
    assert bucket_elimination(g, ordering).bags == \
        vertex_elimination(g, ordering).bags


@settings(max_examples=60, deadline=None)
@given(graphs_with_ordering())
def test_ordering_width_matches_td_width(data):
    g, ordering = data
    td = bucket_elimination(g, ordering)
    assert ordering_width(g, ordering) == max(td.width, 0)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=8))
def test_lower_bounds_below_upper_bounds(g):
    if g.num_vertices == 0:
        return
    lb = max(minor_min_width(g), minor_gamma_r(g))
    ub = treewidth_upper_bound(g)
    assert lb <= ub


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=7))
def test_lower_bounds_sound_vs_brute_force(g):
    if g.num_vertices == 0:
        return
    tw = brute_force_treewidth(g)
    assert minor_min_width(g) <= tw
    assert minor_gamma_r(g) <= tw
    assert ordering_width(g, min_fill_ordering(g)) >= tw


# ----------------------------------------------------------------------
# Chapter 3 invariants
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_leaf_normal_form_dominated(h):
    td = bucket_elimination(h, h.vertex_list())
    lnf = transform_leaf_normal_form(h, td)
    assert lnf.is_valid(h)
    original = list(td.bags.values())
    for bag in lnf.bags.values():
        assert any(bag <= o for o in original)


@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_dca_ordering_width_dominated(h):
    td = bucket_elimination(h, h.vertex_list())
    ordering = ordering_from_decomposition(h, td)
    assert ordering_width(h, ordering) <= max(td.width, 0)


# ----------------------------------------------------------------------
# Set cover invariants
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(hypergraphs(), st.randoms(use_true_random=False))
def test_exact_cover_at_most_greedy(h, rnd):
    vertices = h.vertex_list()
    bag = {v for v in vertices if rnd.random() < 0.5}
    greedy = greedy_set_cover(bag, h)
    exact = exact_set_cover(bag, h)
    assert len(exact) <= len(greedy)
    union = frozenset().union(
        frozenset(), *(h.edge(name) for name in exact)
    )
    assert bag <= union


@settings(max_examples=30, deadline=None)
@given(hypergraphs())
def test_ghw_width_at_most_tw_width_bags(h):
    ordering = h.vertex_list()
    ghw_w = ghw_ordering_width(h, ordering, cover_function=exact_set_cover)
    bags = elimination_bags(h, ordering)
    biggest = max(len(b) for b in bags.values())
    assert ghw_w <= biggest  # cover never needs more than one edge/vertex


# ----------------------------------------------------------------------
# Genetic operator invariants
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.permutations(list(range(8))),
    st.permutations(list(range(8))),
    st.integers(min_value=0, max_value=2**31),
)
def test_crossovers_preserve_permutations(p1, p2, seed):
    rng = random.Random(seed)
    for op in CROSSOVER_OPERATORS.values():
        child = op(list(p1), list(p2), rng)
        assert sorted(child) == list(range(8))


@settings(max_examples=60, deadline=None)
@given(
    st.permutations(list(range(8))),
    st.integers(min_value=0, max_value=2**31),
)
def test_mutations_preserve_permutations(p, seed):
    rng = random.Random(seed)
    for op in MUTATION_OPERATORS.values():
        mutant = op(list(p), rng)
        assert sorted(mutant) == list(range(8))


# ----------------------------------------------------------------------
# Graph elimination/restore invariants
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(graphs_with_ordering(max_vertices=8))
def test_eliminate_restore_roundtrip(data):
    g, ordering = data
    reference = g.copy()
    for v in ordering:
        g.eliminate(v)
    assert len(g) == 0
    for _ in ordering:
        g.restore()
    assert g == reference
