"""The vectorized population kernel and the incremental re-solve API.

Three contracts under test:

* **Bit-identity** — the numpy batch evaluators return exactly the same
  fitness values as the pure-python reference paths (``ghw_fitness`` /
  ``OrderingEvaluator.width`` / ``PrefixGhwEvaluator``), and whole GA
  runs are bit-identical across the three evaluation paths under the
  same seed (history, best individual, evaluation counts).
* **Graceful fallback** — without numpy the GA entry points run the
  pure-python path and warn exactly once (``VectorKernelUnavailable``).
* **Incremental edits** — ``EditTicket`` / ``apply_edit`` keep a live
  :class:`BitCoverEngine` equivalent to a fresh build on the edited
  hypergraph, and ``IncrementalSolver.resolve_incremental`` produces
  certified widths equal to solving the edited instance from scratch.
"""

import random
import warnings

import pytest
from hypothesis import given, settings, strategies as st

import repro.vector as vector_mod
from repro.decomposition import ghw_ordering_width
from repro.decomposition.elimination import OrderingEvaluator
from repro.genetic import GAParameters, ga_ghw, ga_treewidth
from repro.genetic.ga_ghw import PrefixGhwEvaluator, ghw_fitness
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import random_hypergraph
from repro.portfolio import IncrementalSolver, run_portfolio
from repro.setcover.bitcover import BitCoverEngine
from repro.telemetry import Metrics
from repro.vector import VectorKernelUnavailable, resolve_vector

numpy = pytest.importorskip("numpy", reason="vector kernel tests need numpy")

from repro.vector.kernel import VectorGhwEvaluator, VectorTwEvaluator  # noqa: E402


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=8):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    h = Hypergraph(vertices=range(n))
    for i in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        h.add_edge(members, name=f"e{i}")
    for v in sorted(h.isolated_vertices()):
        h.add_edge({v}, name=f"iso{v}")
    return h


@st.composite
def hypergraphs_with_population(draw, max_vertices=8, max_edges=8):
    h = draw(hypergraphs(max_vertices, max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    population = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        ordering = h.vertex_list()
        rng.shuffle(ordering)
        population.append(ordering)
    return h, population


@st.composite
def graphs_with_population(draw, max_vertices=9):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    ) if possible else []
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    population = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        ordering = g.vertex_list()
        rng.shuffle(ordering)
        population.append(ordering)
    return g, population


# ----------------------------------------------------------------------
# Bit-identity: batch evaluators vs the scalar references
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(graphs_with_population())
def test_vector_tw_batch_matches_ordering_evaluator(data):
    graph, population = data
    vector = VectorTwEvaluator(graph)
    reference = OrderingEvaluator(graph)
    got = vector.fitness_batch(population)
    want = [reference.width(ordering) for ordering in population]
    assert got == want


@settings(max_examples=50, deadline=None)
@given(hypergraphs_with_population())
def test_vector_ghw_batch_matches_scalar_and_prefix(data):
    hypergraph, population = data
    vector = VectorGhwEvaluator(hypergraph)
    got = vector.fitness_batch(population)
    want_scalar = [
        ghw_fitness(hypergraph, ordering) for ordering in population
    ]
    prefix = PrefixGhwEvaluator(hypergraph)
    want_prefix = prefix.evaluate_population(population)
    assert got == want_scalar == want_prefix


@settings(max_examples=30, deadline=None)
@given(hypergraphs_with_population())
def test_vector_ghw_batch_rng_does_not_change_values(data):
    # The forked tie-break rng may reorder evaluation internally but the
    # returned values are a pure function of the orderings.
    hypergraph, population = data
    vector = VectorGhwEvaluator(hypergraph)
    a = vector.fitness_batch(population, rng=random.Random(1))
    b = VectorGhwEvaluator(hypergraph).fitness_batch(
        population, rng=random.Random(99)
    )
    assert a == b


# ----------------------------------------------------------------------
# Bit-identity: whole GA runs across evaluation paths
# ----------------------------------------------------------------------


def _ga_ghw_run(hypergraph, **kwargs):
    params = GAParameters(population_size=12, generations=8)
    return ga_ghw(hypergraph, params, rng=random.Random(7), **kwargs)


def test_ga_ghw_three_paths_bit_identical():
    hypergraph = random_hypergraph(18, 24, seed=5)
    reference = _ga_ghw_run(hypergraph, vector=False, incremental=False)
    prefix = _ga_ghw_run(hypergraph, vector=False, incremental=True)
    vector = _ga_ghw_run(hypergraph, vector=True)
    for run in (prefix, vector):
        assert run.history == reference.history
        assert run.best_fitness == reference.best_fitness
        assert run.best_individual == reference.best_individual
        assert run.evaluations == reference.evaluations


def test_ga_tw_vector_bit_identical():
    hypergraph = random_hypergraph(20, 28, seed=11)
    params = GAParameters(population_size=12, generations=8)
    reference = ga_treewidth(
        hypergraph, params, rng=random.Random(3), vector=False
    )
    vector = ga_treewidth(
        hypergraph, params, rng=random.Random(3), vector=True
    )
    assert vector.history == reference.history
    assert vector.best_fitness == reference.best_fitness
    assert vector.best_individual == reference.best_individual
    assert vector.evaluations == reference.evaluations


def test_ga_ghw_vector_counters():
    metrics = Metrics()
    _ga_ghw_run(random_hypergraph(12, 14, seed=2), vector=True,
                metrics=metrics)
    counters = metrics.snapshot()["counters"]
    assert counters["vector.batch_evals"] > 0
    assert counters["vector.batches"] > 0


# ----------------------------------------------------------------------
# Fallback without numpy
# ----------------------------------------------------------------------


def test_fallback_warns_once_and_matches(monkeypatch):
    hypergraph = random_hypergraph(12, 14, seed=9)
    with_numpy = _ga_ghw_run(hypergraph, vector=False)

    monkeypatch.setattr(vector_mod, "_numpy", None)
    monkeypatch.setattr(vector_mod, "_warned", False)
    with pytest.warns(VectorKernelUnavailable):
        fallback = _ga_ghw_run(hypergraph, vector=True)
    # One-time warning: the second request is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = _ga_ghw_run(hypergraph, vector=True)
    for run in (fallback, again):
        assert run.history == with_numpy.history
        assert run.best_individual == with_numpy.best_individual


def test_resolve_vector_auto_and_forced(monkeypatch):
    assert resolve_vector(None, "test") is True
    assert resolve_vector(False, "test") is False
    monkeypatch.setattr(vector_mod, "_numpy", None)
    monkeypatch.setattr(vector_mod, "_warned", True)
    assert resolve_vector(None, "test") is False
    assert resolve_vector(True, "test") is False


# ----------------------------------------------------------------------
# Edit tickets and targeted cache invalidation
# ----------------------------------------------------------------------


def test_edit_tickets_are_str_compatible_and_bump_revision():
    h = Hypergraph(vertices=range(4))
    rev0 = h.revision
    ticket = h.add_edge({0, 1}, name="ab")
    assert ticket == "ab"  # str-compatible: old call sites keep working
    assert ticket.kind == "add"
    assert ticket.members == frozenset({0, 1})
    assert h.revision > rev0
    removed = h.remove_edge("ab")
    assert removed.kind == "remove"
    assert removed.members == frozenset({0, 1})
    assert h.revision > ticket.revision


@settings(max_examples=40, deadline=None)
@given(hypergraphs(max_vertices=7, max_edges=6), st.integers(0, 2**16))
def test_apply_edit_matches_fresh_engine(h, seed):
    rng = random.Random(seed)
    live = BitCoverEngine(h)
    # Warm the caches on a few random bags before editing.
    vertices = h.vertex_list()
    for _ in range(5):
        bag = rng.sample(vertices, rng.randint(1, len(vertices)))
        live.greedy_size(live.mask_of(bag))

    names = list(h.edges)
    name = rng.choice(names)
    members = h.edges[name]
    live.apply_edit(h.remove_edge(name))
    if h.isolated_vertices():
        # Removing this edge isolated a vertex: put it back, so the
        # sequence exercises both edit directions.
        live.apply_edit(h.add_edge(members, name=name))
    fresh = BitCoverEngine(h)

    assert live.edge_names == fresh.edge_names
    assert live.edge_order == fresh.edge_order
    for _ in range(8):
        bag = rng.sample(vertices, rng.randint(1, len(vertices)))
        mask = live.mask_of(bag)
        assert live.greedy_cover(mask) == fresh.greedy_cover(mask)
        assert live.greedy_size(mask) == fresh.greedy_size(mask)
        assert live.exact_size(mask) == fresh.exact_size(mask)


def test_invalidation_is_targeted_and_counted():
    h = Hypergraph(vertices=range(6))
    h.add_edge({0, 1}, name="a")
    h.add_edge({2, 3}, name="b")
    h.add_edge({4, 5}, name="c")
    metrics = Metrics()
    engine = BitCoverEngine(h, metrics)
    left = engine.mask_of([0, 1])
    right = engine.mask_of([4, 5])
    engine.greedy_size(left)
    engine.greedy_size(right)
    ticket = h.add_edge({0, 2}, name="d")
    dropped = engine.apply_edit(ticket)
    counters = metrics.snapshot()["counters"]
    assert counters["cache.invalidate.calls"] == 1
    assert dropped >= 1
    # The untouched bag's entry survived: a hit, not a recompute.
    before = counters.get("cover.greedy.computed", 0)
    engine.greedy_cover(right)
    assert metrics.snapshot()["counters"].get(
        "cover.greedy.computed", 0
    ) == before


# ----------------------------------------------------------------------
# Incremental re-solve equivalence
# ----------------------------------------------------------------------


def _removable_edge(h, rng):
    """An edge whose removal leaves no isolated vertex (or None)."""
    names = list(h.edges)
    rng.shuffle(names)
    for name in names:
        if all(len(h.edges_containing(v)) > 1 for v in h.edges[name]):
            return name
    return None


def test_resolve_incremental_matches_scratch_solve():
    h = random_hypergraph(10, 14, seed=21, min_arity=2, max_arity=3)
    for v in sorted(h.isolated_vertices()):
        h.add_edge({v}, name=f"iso{v}")
    rng = random.Random(21)
    solver = IncrementalSolver(h, seed=4, exact_limit=16)
    base = solver.solve(jobs=1, deterministic=True, max_nodes=20000,
                        backends=["bb-ghw", "min-fill-ghw"])
    assert base.certificate.ok

    for _ in range(3):
        name = _removable_edge(h, rng)
        if name is None:
            break
        members = h.edges[name]
        solver.remove_edge(name)
        warm = solver.resolve_incremental()
        assert warm.warm and warm.certificate.ok
        assert warm.revision == h.revision

        scratch = IncrementalSolver(h.copy(), seed=4, exact_limit=16)
        cold = scratch.solve(jobs=1, deterministic=True, max_nodes=20000,
                             backends=["bb-ghw", "min-fill-ghw"])
        if warm.exact and cold.exact:
            assert warm.width == cold.width
        else:  # budget-limited: both are certified upper bounds
            assert warm.width >= cold.lower_bound
        solver.add_edge(members, name=name)
        solver.resolve_incremental()


def test_resolve_incremental_rejects_isolated_vertices():
    h = Hypergraph(vertices=range(3))
    h.add_edge({0, 1}, name="a")
    h.add_edge({1, 2}, name="b")
    solver = IncrementalSolver(h, seed=0, exact_limit=8)
    solver.solve(jobs=1, deterministic=True, max_nodes=2000,
                 backends=["bb-ghw"])
    solver.remove_edge("b")  # isolates vertex 2
    with pytest.raises(Exception, match="isolated"):
        solver.resolve_incremental()


def test_incremental_solver_tracks_ordering_repair():
    h = Hypergraph(vertices=range(4))
    h.add_edge({0, 1}, name="a")
    h.add_edge({1, 2}, name="b")
    h.add_edge({2, 3}, name="c")
    solver = IncrementalSolver(h, seed=0, exact_limit=8)
    solver.solve(jobs=1, deterministic=True, max_nodes=2000,
                 backends=["bb-ghw"])
    solver.add_edge({0, 3, 4}, name="d")  # introduces a new vertex
    warm = solver.resolve_incremental()
    assert set(warm.ordering) == set(h.vertex_list())
    assert warm.certificate.ok
    assert 4 in warm.ordering  # the repaired ordering picked up vertex 4


# ----------------------------------------------------------------------
# Portfolio warm-start plumbing
# ----------------------------------------------------------------------


def test_portfolio_accepts_warm_start_bounds():
    h = random_hypergraph(8, 10, seed=3)
    cold = run_portfolio(
        h, backends=["min-fill-ghw", "ga-ghw"], jobs=1,
        deterministic=True, max_nodes=5000, metric="ghw",
        ga_population=8, ga_generations=4,
    )
    warm_ordering = list(cold.ordering)
    warm = run_portfolio(
        h, backends=["min-fill-ghw", "ga-ghw"], jobs=1,
        deterministic=True, max_nodes=5000, metric="ghw",
        ga_population=8, ga_generations=4,
        initial_upper=cold.upper_bound,
        initial_lower=1,
        warm_ordering=warm_ordering,
    )
    assert warm.upper_bound <= cold.upper_bound
    assert warm.lower_bound >= 1
    width = ghw_ordering_width(h, warm_ordering)
    assert width >= warm.lower_bound
