"""Tests for BB-ghw and A*-ghw — exactness, anytime bounds, budgets."""

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    bridge_hypergraph,
    clique_hypergraph,
    grid2d_hypergraph,
)
from repro.search import (
    SearchBudget,
    astar_ghw,
    branch_and_bound_ghw,
    brute_force_ghw,
)
from tests.conftest import make_covered_hypergraph

SOLVERS = [branch_and_bound_ghw, astar_ghw]


@pytest.mark.parametrize("solver", SOLVERS)
class TestExactness:
    def test_edgeless(self, solver):
        result = solver(Hypergraph())
        assert result.exact and result.width == 0

    def test_single_edge(self, solver):
        result = solver(Hypergraph(edges={"e": {1, 2, 3}}))
        assert result.exact and result.width == 1

    def test_example_hypergraph(self, solver, example_hypergraph):
        result = solver(example_hypergraph)
        assert result.exact and result.width == 2  # Fig. 2.7

    @pytest.mark.parametrize("seed", range(12))
    def test_random_match_brute_force(self, solver, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 7)
        m = rng.randint(1, 10)
        h = make_covered_hypergraph(n, m, seed=seed + 700)
        expected = brute_force_ghw(h)
        result = solver(h)
        assert result.exact and result.width == expected, (seed, result)

    def test_clique_family(self, solver):
        # ghw(clique hypergraph on n vertices) = ceil(n/2)
        for n in (4, 6, 8):
            result = solver(clique_hypergraph(n))
            assert result.exact and result.width == n // 2, n

    def test_adder_family(self, solver):
        result = solver(adder_hypergraph(6))
        assert result.exact and result.width == 2

    def test_isolated_vertex_rejected(self, solver):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(ValueError):
            solver(h)

    def test_witness_ordering_is_permutation(self, solver, adder5):
        result = solver(adder5)
        assert sorted(map(str, result.ordering)) == sorted(
            map(str, adder5.vertex_list())
        )


@pytest.mark.parametrize("solver", SOLVERS)
class TestAblationFlags:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_without_reductions(self, solver, seed):
        h = make_covered_hypergraph(6, 8, seed=seed + 800)
        expected = brute_force_ghw(h)
        result = solver(h, use_reductions=False)
        assert result.exact and result.width == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_without_pr2(self, solver, seed):
        h = make_covered_hypergraph(6, 8, seed=seed + 900)
        expected = brute_force_ghw(h)
        result = solver(h, use_pr2=False)
        assert result.exact and result.width == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_sas_rule_preserves_exactness(self, solver, seed):
        """The strongly-almost-simplicial rule (thesis §8.2) — enabled
        via use_sas — must not change results on small instances."""
        h = make_covered_hypergraph(6, 8, seed=seed + 1000)
        expected = brute_force_ghw(h)
        result = solver(h, use_sas=True)
        assert result.exact and result.width == expected


class TestBudgets:
    def test_bb_budget_returns_bounds(self):
        h = grid2d_hypergraph(8)
        result = branch_and_bound_ghw(h, budget=SearchBudget(max_nodes=30))
        assert result.lower_bound <= result.upper_bound

    def test_astar_budget_returns_bounds(self):
        h = grid2d_hypergraph(8)
        result = astar_ghw(h, budget=SearchBudget(max_nodes=30))
        assert result.lower_bound <= result.upper_bound

    def test_bounds_bracket_known_ghw(self):
        h = bridge_hypergraph(10)
        result = branch_and_bound_ghw(h, budget=SearchBudget(max_nodes=200))
        # whatever the exact value, the bracket must be consistent
        assert 1 <= result.lower_bound <= result.upper_bound

    def test_anytime_lower_bound_monotone(self):
        h = grid2d_hypergraph(8)
        small = astar_ghw(h, budget=SearchBudget(max_nodes=5))
        large = astar_ghw(h, budget=SearchBudget(max_nodes=200))
        assert large.lower_bound >= small.lower_bound


class TestGhwVsTreewidth:
    """ghw(H) <= tw(H) + 1 relations and cross-checks."""

    @pytest.mark.parametrize("seed", range(6))
    def test_ghw_at_most_tw_plus_one(self, seed):
        from repro.search import astar_treewidth

        h = make_covered_hypergraph(6, 8, seed=seed + 1100)
        ghw = branch_and_bound_ghw(h).width
        tw = astar_treewidth(h).width
        # covering a bag of size tw+1 needs at most tw+1 edges; in fact
        # ghw <= tw + 1 always (cover each vertex by one edge).
        assert ghw <= tw + 1

    def test_clique_gap(self):
        """clique_10: tw = 9 but ghw = 5 — the gap that motivates GHDs."""
        from repro.search import astar_treewidth

        h = clique_hypergraph(10)
        assert astar_treewidth(h).width == 9
        assert branch_and_bound_ghw(h).width == 5
