"""Tests for the shared ghw-search machinery (GhwSearchContext)."""

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import adder_hypergraph, clique_hypergraph
from repro.search.ghw_common import GhwSearchContext, initial_ghw_bounds
from repro.bounds import min_fill_ordering
from repro.decomposition import elimination_bags, ghw_ordering_width
from repro.setcover import exact_set_cover


@pytest.fixture
def context(example_hypergraph):
    return GhwSearchContext(example_hypergraph)


class TestCoverCaching:
    def test_exact_cover_size(self, context, example_hypergraph):
        bag = frozenset({"x1", "x2", "x3"})
        assert context.exact_cover_size(bag) == \
            len(exact_set_cover(bag, example_hypergraph))

    def test_cache_hits_are_consistent(self, context):
        bag = frozenset({"x1", "x4"})
        first = context.exact_cover_size(bag)
        second = context.exact_cover_size(bag)
        assert first == second

    def test_greedy_at_least_exact(self, context):
        for bag in (frozenset({"x1", "x4"}), frozenset({"x2", "x5", "x6"})):
            assert context.exact_cover_size(bag) <= \
                context.greedy_cover_size(bag)

    def test_child_cost_matches_bag_cover(self, example_hypergraph):
        context = GhwSearchContext(example_hypergraph)
        primal = example_hypergraph.primal_graph()
        for v in primal.vertex_list():
            bag = frozenset(primal.neighbors(v) | {v})
            assert context.child_cost(primal, v) == \
                context.exact_cover_size(bag)


class TestHeuristic:
    def test_empty_graph_zero(self, context, example_hypergraph):
        primal = example_hypergraph.primal_graph()
        for v in list(primal.vertex_list()):
            primal.remove_vertex(v)
        assert context.heuristic(primal) == 0

    def test_admissible_on_cliques(self):
        # h at the root must not exceed the true ghw.
        for n in (4, 6, 8):
            h = clique_hypergraph(n)
            context = GhwSearchContext(h)
            assert context.heuristic(h.primal_graph()) <= n // 2

    def test_remaining_rank(self, context, example_hypergraph):
        all_vertices = frozenset(example_hypergraph.vertex_list())
        assert context.remaining_rank(all_vertices) == 3
        assert context.remaining_rank(frozenset({"x1", "x2"})) == 2
        assert context.remaining_rank(frozenset()) == 1

    def test_completion_bound_covers_every_future_bag(self):
        h = adder_hypergraph(4)
        context = GhwSearchContext(h)
        primal = h.primal_graph()
        bound = context.completion_bound(primal)
        # any elimination bag's exact cover is at most the bound
        bags = elimination_bags(h, h.vertex_list())
        assert all(
            context.exact_cover_size(bag) <= bound
            for bag in bags.values()
        )


class TestInitialBounds:
    def test_matches_evaluator(self, example_hypergraph):
        context = GhwSearchContext(example_hypergraph)
        ordering = min_fill_ordering(example_hypergraph)
        ub = initial_ghw_bounds(example_hypergraph, context, ordering)
        assert ub == ghw_ordering_width(
            example_hypergraph, ordering, cover_function=exact_set_cover
        )

    def test_is_achievable(self, example_hypergraph):
        context = GhwSearchContext(example_hypergraph)
        ordering = min_fill_ordering(example_hypergraph)
        ub = initial_ghw_bounds(example_hypergraph, context, ordering)
        assert ub >= 2  # ghw of the example
