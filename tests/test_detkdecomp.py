"""Tests for det-k-decomp and exact hypertree width."""

import pytest

from repro.hypergraph import Hypergraph, is_alpha_acyclic
from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    grid2d_hypergraph,
)
from repro.search import (
    branch_and_bound_ghw,
    det_k_decomp,
    hypertree_width,
)
from tests.conftest import make_covered_hypergraph


class TestDetKDecomp:
    def test_k_must_be_positive(self, example_hypergraph):
        with pytest.raises(ValueError):
            det_k_decomp(example_hypergraph, 0)

    def test_isolated_vertices_rejected(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(ValueError):
            det_k_decomp(h, 2)

    def test_edgeless(self):
        htd = det_k_decomp(Hypergraph(), 1)
        assert htd is not None and htd.ghw_width == 0

    def test_single_edge_width_one(self):
        h = Hypergraph(edges={"e": {1, 2, 3}})
        htd = det_k_decomp(h, 1)
        assert htd is not None
        assert htd.violations(h) == []
        assert htd.ghw_width == 1

    def test_triangle_needs_two(self):
        tri = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        assert det_k_decomp(tri, 1) is None
        htd = det_k_decomp(tri, 2)
        assert htd is not None and htd.violations(tri) == []

    def test_monotone_in_k(self, example_hypergraph):
        # if width k works, width k+1 works too
        for k in range(1, 4):
            a = det_k_decomp(example_hypergraph, k)
            b = det_k_decomp(example_hypergraph, k + 1)
            if a is not None:
                assert b is not None

    def test_disconnected_hypergraph(self):
        h = Hypergraph(edges={"a": {1, 2}, "b": {3, 4}, "c": {4, 5}})
        hw, htd = hypertree_width(h)
        assert hw == 1
        assert htd.violations(h) == []
        assert htd.is_tree()

    @pytest.mark.parametrize("seed", range(10))
    def test_output_always_valid(self, seed):
        h = make_covered_hypergraph(7, 9, seed=seed + 13000)
        hw, htd = hypertree_width(h)
        assert htd.violations(h) == [], seed
        assert htd.ghw_width <= hw


class TestHypertreeWidthFacts:
    def test_width_one_iff_acyclic(self):
        """hw(H) = 1 iff H is α-acyclic — cross-validated against GYO."""
        for seed in range(12):
            h = make_covered_hypergraph(6, 6, seed=seed + 13100)
            hw, _ = hypertree_width(h)
            assert (hw == 1) == is_alpha_acyclic(h), seed

    def test_clique_family(self):
        # hw(binary clique hypergraph on n vertices) = ceil(n/2)
        for n in (3, 4, 5, 6):
            h = clique_hypergraph(n)
            hw, _ = hypertree_width(h)
            assert hw == -(-n // 2), n

    def test_adder_family(self):
        hw, _ = hypertree_width(adder_hypergraph(4))
        assert hw == 2

    def test_grid2d_small(self):
        h = grid2d_hypergraph(4)
        hw, htd = hypertree_width(h)
        assert htd.violations(h) == []
        assert 1 <= hw <= 3

    @pytest.mark.parametrize("seed", range(8))
    def test_ghw_le_hw(self, seed):
        """ghw(H) <= hw(H) (GHDs drop a condition)."""
        h = make_covered_hypergraph(6, 8, seed=seed + 13200)
        ghw = branch_and_bound_ghw(h).width
        hw, _ = hypertree_width(h)
        assert ghw <= hw, seed

    @pytest.mark.parametrize("seed", range(6))
    def test_hw_le_ghw_repair_bound(self, seed):
        """det-k-decomp's exact hw never exceeds the fixpoint
        constructor's upper bound."""
        from repro.decomposition import hypertree_width_upper_bound

        h = make_covered_hypergraph(6, 8, seed=seed + 13300)
        hw, _ = hypertree_width(h)
        ub = hypertree_width_upper_bound(h, h.vertex_list())
        assert hw <= ub, seed

    def test_example_5_hypergraph(self, example_hypergraph):
        hw, htd = hypertree_width(example_hypergraph)
        ghw = branch_and_bound_ghw(example_hypergraph).width
        assert ghw == 2
        assert hw in (2, 3)
        assert htd.violations(example_hypergraph) == []
