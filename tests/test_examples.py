"""Smoke tests: every example script must run to completion.

Examples are the user-facing contract; a broken example is a broken
release.  Each runs in-process with a trimmed argv.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "exact treewidth" in out
    assert "verified" in out


def test_treewidth_hunt_small(capsys):
    run_example("treewidth_hunt.py", ["myciel3"])
    out = capsys.readouterr().out
    assert "fixed the treewidth: 5" in out


def test_ghw_pipeline_small(capsys):
    run_example("ghw_pipeline.py", ["adder_5"])
    out = capsys.readouterr().out
    assert "ghw = 2" in out
    assert "witness GHD verified" in out
    assert "round trip" in out


def test_csp_solving(capsys):
    run_example("csp_solving.py")
    out = capsys.readouterr().out
    assert "Australia" in out
    assert "UNSAT" in out


def test_bayes_triangulation(capsys):
    run_example("bayes_triangulation.py")
    out = capsys.readouterr().out
    assert "GA-bn" in out
    assert "junction-tree skeleton" in out


def test_downstream_dp(capsys):
    run_example("downstream_dp.py")
    out = capsys.readouterr().out
    assert "maximum independent set: 8" in out
    assert "minimum dominating set: 4" in out
    assert "7812" in out  # 3-colourings of the 4x4 grid, both counters
    assert "agree" in out
