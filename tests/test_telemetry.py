"""Tests for the telemetry subsystem: tracer records, schema
validation, the emit → parse → replay round trip, merge ordering,
metrics instruments, and the NullTracer's zero-overhead contract."""

import json
import time

import pytest

from repro.hypergraph.generators import random_gnm_graph
from repro.instances import get_instance
from repro.portfolio import run_portfolio
from repro.search import SearchBudget
from repro.search.astar_tw import astar_treewidth
from repro.search.common import TRACE_NODE_BATCH, BoundHooks, _BudgetClock
from repro.telemetry import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlTracer,
    MemoryTracer,
    Metrics,
    NullTracer,
    SampleGate,
    TraceSchemaError,
    merge_records,
    read_jsonl,
    replay_counters,
    validate_file,
    validate_record,
    validate_records,
    write_jsonl,
)
from repro.telemetry.schema import main as schema_main


def fake_record(worker, seq, t, kind="event", name="x", fields=None):
    record = {
        "v": 1, "t": t, "worker": worker, "seq": seq,
        "kind": kind, "name": name,
    }
    if fields is not None:
        record["fields"] = fields
    return record


# ----------------------------------------------------------------------
# Tracer records
# ----------------------------------------------------------------------

class TestTracer:
    def test_record_shape_and_seq(self):
        tracer = MemoryTracer(worker="w")
        tracer.event("a", value=1)
        tracer.metric("b", rows=7)
        assert [r["seq"] for r in tracer.records] == [0, 1]
        first = tracer.records[0]
        assert first["v"] == 1
        assert first["worker"] == "w"
        assert first["kind"] == "event"
        assert first["name"] == "a"
        assert first["fields"] == {"value": 1}
        assert first["t"] >= 0
        assert tracer.records[1]["kind"] == "metric"

    def test_span_emits_start_and_end_with_dur(self):
        tracer = MemoryTracer()
        with tracer.span("work", size=3):
            tracer.event("inside")
        kinds = [r["kind"] for r in tracer.records]
        assert kinds == ["span_start", "event", "span_end"]
        start, _, end = tracer.records
        assert start["name"] == end["name"] == "work"
        assert start["fields"] == {"size": 3}
        assert end["fields"]["dur"] >= 0
        assert "error" not in end["fields"]

    def test_span_records_exception_type(self):
        tracer = MemoryTracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        end = tracer.records[-1]
        assert end["kind"] == "span_end"
        assert end["fields"]["error"] == "ValueError"

    def test_shared_time_base(self):
        t0 = time.monotonic()
        a = MemoryTracer(worker="a", t0=t0)
        b = MemoryTracer(worker="b", t0=t0)
        a.event("x")
        b.event("y")
        # Both timestamps measure from the same origin.
        assert abs(a.records[0]["t"] - b.records[0]["t"]) < 1.0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path, worker="w") as tracer:
            with tracer.span("s"):
                tracer.event("e", n=5)
        records = read_jsonl(path)
        assert len(records) == 3
        validate_records(records)
        assert records[1]["fields"] == {"n": 5}

    def test_write_read_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        records = [fake_record("w", i, float(i)) for i in range(4)]
        assert write_jsonl(path, records) == 4
        assert read_jsonl(path) == records


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

class TestSchema:
    def test_valid_stream(self):
        records = [
            fake_record("w", 0, 0.0, kind="span_start", name="s"),
            fake_record("w", 1, 0.1),
            fake_record("w", 2, 0.2, kind="span_end", name="s",
                        fields={"dur": 0.2}),
        ]
        summary = validate_records(records)
        assert summary["records"] == 3
        assert summary["workers"] == ["w"]
        assert summary["spans"] == 1
        assert summary["events"] == 1
        assert summary["open_spans"] == {}

    def test_missing_key_rejected(self):
        record = fake_record("w", 0, 0.0)
        del record["worker"]
        with pytest.raises(TraceSchemaError, match="worker"):
            validate_record(record)

    @pytest.mark.parametrize("key,value", [
        ("v", 99), ("t", -1.0), ("worker", ""), ("seq", -1),
        ("kind", "mystery"), ("name", ""), ("fields", "not-a-dict"),
        ("seq", True), ("t", True),
    ])
    def test_bad_values_rejected(self, key, value):
        record = fake_record("w", 0, 0.0)
        record[key] = value
        with pytest.raises(TraceSchemaError):
            validate_record(record)

    def test_span_end_requires_dur(self):
        record = fake_record("w", 0, 0.0, kind="span_end", name="s")
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_record(record)

    def test_seq_gap_rejected(self):
        records = [fake_record("w", 0, 0.0), fake_record("w", 2, 0.1)]
        with pytest.raises(TraceSchemaError, match="seq"):
            validate_records(records)

    def test_per_worker_seq_independent(self):
        records = [
            fake_record("a", 0, 0.0), fake_record("b", 0, 0.1),
            fake_record("a", 1, 0.2), fake_record("b", 1, 0.3),
        ]
        assert validate_records(records)["workers"] == ["a", "b"]

    def test_mismatched_span_end_rejected(self):
        records = [
            fake_record("w", 0, 0.0, kind="span_start", name="outer"),
            fake_record("w", 1, 0.1, kind="span_end", name="other",
                        fields={"dur": 0.1}),
        ]
        with pytest.raises(TraceSchemaError, match="innermost"):
            validate_records(records)

    def test_open_spans_tolerated(self):
        records = [fake_record("w", 0, 0.0, kind="span_start", name="s")]
        assert validate_records(records)["open_spans"] == {"w": ["s"]}

    def test_cli_ok_and_fail(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        write_jsonl(good, [fake_record("w", 0, 0.0)])
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"v": 1}) + "\n")
        assert schema_main([str(good)]) == 0
        assert schema_main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OK" in out and "FAIL" in out


# ----------------------------------------------------------------------
# Emit → parse → replay round trip
# ----------------------------------------------------------------------

class TestReplay:
    def test_replay_matches_emission(self, tmp_path):
        path = tmp_path / "t.jsonl"
        expected_count = 0
        expected_nodes = 0
        with JsonlTracer(path) as tracer:
            for batch in range(1, 6):
                tracer.event("node_batch", nodes=batch * 256)
                expected_count += 1
                expected_nodes += batch * 256
            tracer.event("bound_publish", kind="ub", value=7)
            tracer.metric("csp_node", bag=3, rows=12, label="skip-me")
        records = read_jsonl(path)
        validate_records(records)
        replayed = replay_counters(records)
        assert replayed["node_batch"]["count"] == expected_count
        assert replayed["node_batch"]["sum"]["nodes"] == expected_nodes
        assert replayed["bound_publish"]["sum"]["value"] == 7
        # Non-numeric fields are not summed; numeric ones are.
        assert replayed["csp_node"]["sum"] == {"bag": 3, "rows": 12}

    def test_replay_ignores_spans_and_bools(self):
        records = [
            fake_record("w", 0, 0.0, kind="span_start", name="s"),
            fake_record("w", 1, 0.1, name="done", fields={"ok": True}),
            fake_record("w", 2, 0.2, kind="span_end", name="s",
                        fields={"dur": 0.2}),
        ]
        replayed = replay_counters(records)
        assert "s" not in replayed
        assert replayed["done"] == {"count": 1, "sum": {}}

    def test_search_trace_replays_final_node_count(self):
        # A real traced search: node_batch events replay to within one
        # batch of the reported nodes_expanded.  myciel4 expands >1000
        # nodes, so the search runs (no bounds shortcut) and batches fire.
        graph = get_instance("myciel4").build()
        tracer = MemoryTracer()
        result = astar_treewidth(graph, budget=SearchBudget(tracer=tracer))
        validate_records(tracer.records)
        replayed = replay_counters(tracer.records)
        finish = replayed["search_finish"]["sum"]
        assert finish["nodes_expanded"] == result.stats.nodes_expanded
        if result.stats.nodes_expanded >= TRACE_NODE_BATCH:
            batches = replayed["node_batch"]["count"]
            assert batches == result.stats.nodes_expanded // TRACE_NODE_BATCH


# ----------------------------------------------------------------------
# Merge ordering
# ----------------------------------------------------------------------

class TestMerge:
    def test_chronological_merge_with_tie_breaks(self):
        a = [fake_record("a", 0, 0.1), fake_record("a", 1, 0.5)]
        b = [fake_record("b", 0, 0.1), fake_record("b", 1, 0.3)]
        merged = merge_records([a, b])
        assert [(r["worker"], r["seq"]) for r in merged] == [
            ("a", 0), ("b", 0), ("b", 1), ("a", 1),
        ]
        validate_records(merged)

    def test_deterministic_merge_ignores_time(self):
        # Worker b's clock says it went first; deterministic mode still
        # concatenates in stream order.
        a = [fake_record("a", 0, 9.0), fake_record("a", 1, 9.5)]
        b = [fake_record("b", 0, 0.1)]
        merged = merge_records([a, b], deterministic=True)
        assert [(r["worker"], r["seq"]) for r in merged] == [
            ("a", 0), ("a", 1), ("b", 0),
        ]

    def test_explicit_worker_order_ranks_ties(self):
        a = [fake_record("a", 0, 0.2)]
        b = [fake_record("b", 0, 0.2)]
        merged = merge_records([a, b], worker_order=["b", "a"])
        assert [r["worker"] for r in merged] == ["b", "a"]

    def test_unexpected_worker_rejected(self):
        with pytest.raises(TraceSchemaError, match="unexpected worker"):
            merge_records(
                [[fake_record("rogue", 0, 0.0)]], worker_order=["a"]
            )

    def test_merged_stream_passes_validation(self):
        streams = [
            [
                fake_record(w, 0, t, kind="span_start", name="run"),
                fake_record(w, 1, t + 0.2, kind="span_end", name="run",
                            fields={"dur": 0.2}),
            ]
            for w, t in (("a", 0.0), ("b", 0.05), ("c", 0.1))
        ]
        summary = validate_records(merge_records(streams))
        assert summary["workers"] == ["a", "b", "c"]
        assert summary["spans"] == 3


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetrics:
    def test_instruments(self):
        metrics = Metrics()
        assert not metrics
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        metrics.gauge("g").set(2.5)
        for value in (1.0, 3.0, 2.0):
            metrics.histogram("h").observe(value)
        assert metrics
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_snapshot_is_json_ready(self):
        metrics = Metrics()
        metrics.counter("c").inc()
        metrics.histogram("h").observe(1.5)
        assert json.loads(json.dumps(metrics.snapshot()))

    def test_merge_snapshot(self):
        worker = Metrics()
        worker.counter("nodes").inc(10)
        worker.gauge("frontier").set(4)
        worker.histogram("dur").observe(1.0)
        parent = Metrics()
        parent.counter("nodes").inc(5)
        parent.histogram("dur").observe(3.0)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["nodes"] == 15
        assert snap["gauges"]["frontier"] == 4
        assert snap["histograms"]["dur"]["count"] == 2
        assert snap["histograms"]["dur"]["min"] == 1.0
        assert snap["histograms"]["dur"]["max"] == 3.0

    def test_sample_gate(self):
        gate = SampleGate(3)
        assert [gate.fire() for _ in range(7)] == [
            False, False, True, False, False, True, False,
        ]
        with pytest.raises(ValueError):
            SampleGate(0)

    def test_instrument_primitives(self):
        c = Counter()
        c.inc()
        assert c.value == 1
        g = Gauge()
        assert g.value is None
        g.set(7)
        assert g.value == 7
        h = Histogram()
        assert h.mean is None


# ----------------------------------------------------------------------
# NullTracer: the zero-overhead contract
# ----------------------------------------------------------------------

class TestNullTracer:
    def test_all_methods_are_noops(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.event("x", a=1) is None
        assert tracer.metric("x", a=1) is None
        with tracer.span("x", a=1):
            pass
        tracer.close()
        with tracer:
            pass

    def test_untraced_search_emits_nothing(self):
        graph = random_gnm_graph(10, 20, seed=1)
        clock_budget = SearchBudget(hooks=BoundHooks())
        result = astar_treewidth(graph, budget=clock_budget)
        assert result.exact
        # The clock resolved the NullTracer and kept tracing off.
        assert clock_budget.tracer is None

    def test_budget_clock_resolves_null_tracer(self):
        clock = _BudgetClock(SearchBudget())
        assert clock.tracer is NULL_TRACER
        assert clock._tracing is False

    def test_overhead_micro_check(self):
        # The disabled path is one cached-bool branch; even on a slow
        # CI box a million no-op taps must finish in well under a
        # second.  Generous absolute bound to keep this unflaky.
        tracer = NULL_TRACER
        start = time.perf_counter()
        for _ in range(200_000):
            if tracer.enabled:
                tracer.event("node_batch", nodes=0)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5

    def test_traced_and_untraced_search_agree(self):
        graph = get_instance("myciel4").build()
        plain = astar_treewidth(graph)
        tracer = MemoryTracer()
        traced = astar_treewidth(graph, budget=SearchBudget(tracer=tracer))
        assert plain.upper_bound == traced.upper_bound
        assert plain.stats.nodes_expanded == traced.stats.nodes_expanded
        assert tracer.records  # tracing actually happened


# ----------------------------------------------------------------------
# Portfolio trace integration (the acceptance criterion)
# ----------------------------------------------------------------------

class TestPortfolioTrace:
    def test_live_portfolio_trace(self, tmp_path):
        path = tmp_path / "portfolio.jsonl"
        graph = get_instance("myciel4").build()
        result = run_portfolio(
            graph,
            backends=["bb-tw", "min-fill"],
            jobs=2,
            budget_seconds=30,
            trace=str(path),
        )
        assert result.trace_path == str(path)
        assert result.trace_records > 0
        summary = validate_file(path)
        records = read_jsonl(path)
        assert len(records) == result.trace_records
        # Spans from >= 2 distinct workers plus the parent.
        span_workers = {
            r["worker"] for r in records if r["kind"] == "span_start"
        }
        assert len(span_workers - {"portfolio"}) >= 2
        # At least one bound-exchange message crossed the channel (the
        # first published bound always tightens it from infinity).
        assert any(r["name"] == "bound_exchange" for r in records)
        assert summary["open_spans"] == {}

    def test_deterministic_portfolio_trace_is_worker_ordered(self, tmp_path):
        path = tmp_path / "det.jsonl"
        graph = get_instance("myciel4").build()
        run_portfolio(
            graph,
            backends=["min-fill", "bb-tw"],
            jobs=2,
            deterministic=True,
            max_nodes=2000,
            trace=str(path),
        )
        records = read_jsonl(path)
        validate_records(records)
        # Worker blocks are contiguous in declared order: parent first
        # (it traced first), then each backend's whole stream.
        workers = [r["worker"] for r in records]
        seen = []
        for worker in workers:
            if worker not in seen:
                seen.append(worker)
        positions = {w: [i for i, x in enumerate(workers) if x == w]
                     for w in seen}
        for w, idx in positions.items():
            assert idx == list(range(idx[0], idx[0] + len(idx))), w

    def test_untraced_portfolio_has_no_trace(self):
        graph = get_instance("myciel4").build()
        result = run_portfolio(
            graph,
            backends=["min-fill"],
            jobs=1,
            deterministic=True,
            max_nodes=500,
        )
        assert result.trace_path is None
        assert result.trace_records == 0
