"""Tests for solving CSPs from tree decompositions and GHDs
(thesis §2.4, Figs. 2.8–2.9)."""

import pytest

from repro.bounds import min_fill_ordering
from repro.csp import (
    CSPError,
    australia_map_coloring,
    graph_coloring_csp,
    n_queens_csp,
    random_binary_csp,
    sat_csp,
    solve,
    solve_from_ghd,
    solve_from_tree_decomposition,
    thesis_example_5,
)
from repro.decomposition import (
    TreeDecomposition,
    bucket_elimination,
    ghd_from_ordering,
)
from repro.hypergraph.generators import cycle_graph, grid_graph, path_graph
from repro.setcover import exact_set_cover


def decompositions_of(csp):
    h = csp.constraint_hypergraph()
    for v in sorted(h.isolated_vertices(), key=repr):
        h.remove_vertex(v)
    ordering = min_fill_ordering(h)
    td = bucket_elimination(h, ordering)
    ghd = ghd_from_ordering(h, ordering, cover_function=exact_set_cover)
    return td, ghd


class TestSolveFromTD:
    def test_example_5(self):
        csp = thesis_example_5()
        td, _ = decompositions_of(csp)
        solution = solve_from_tree_decomposition(csp, td)
        assert csp.is_solution(solution)

    def test_australia(self):
        csp = australia_map_coloring()
        td, _ = decompositions_of(csp)
        solution = solve_from_tree_decomposition(csp, td)
        assert csp.is_solution(solution)

    def test_unsat_detected(self):
        csp = graph_coloring_csp(cycle_graph(5), 2)  # odd cycle, 2 colors
        td, _ = decompositions_of(csp)
        assert solve_from_tree_decomposition(csp, td) is None

    def test_invalid_decomposition_rejected(self):
        csp = thesis_example_5()
        bogus = TreeDecomposition()
        bogus.add_node("n", {"x1"})
        with pytest.raises(CSPError):
            solve_from_tree_decomposition(csp, bogus)


class TestSolveFromGHD:
    def test_example_5(self):
        csp = thesis_example_5()
        _, ghd = decompositions_of(csp)
        solution = solve_from_ghd(csp, ghd)
        assert csp.is_solution(solution)

    def test_australia(self):
        csp = australia_map_coloring()
        _, ghd = decompositions_of(csp)
        solution = solve_from_ghd(csp, ghd)
        assert csp.is_solution(solution)

    def test_unsat_detected(self):
        csp = graph_coloring_csp(cycle_graph(5), 2)
        _, ghd = decompositions_of(csp)
        assert solve_from_ghd(csp, ghd) is None

    def test_width_two_example_matches_fig_2_7(self):
        csp = thesis_example_5()
        _, ghd = decompositions_of(csp)
        assert ghd.ghw_width == 2


class TestSolveFacade:
    @pytest.mark.parametrize("method", ["backtracking", "td", "ghd"])
    def test_solves_satisfiable(self, method):
        csp = graph_coloring_csp(grid_graph(3), 3)
        solution = solve(csp, method)
        assert csp.is_solution(solution)

    @pytest.mark.parametrize("method", ["backtracking", "td", "ghd"])
    def test_detects_unsatisfiable(self, method):
        csp = graph_coloring_csp(cycle_graph(7), 2)
        assert solve(csp, method) is None

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve(thesis_example_5(), "magic")

    def test_unconstrained_variables_assigned(self):
        csp = australia_map_coloring()  # TAS has no constraints
        solution = solve(csp, "ghd")
        assert "TAS" in solution

    def test_no_constraints_at_all(self):
        from repro.csp import CSP

        csp = CSP(domains={"a": (1, 2), "b": (3,)}, constraints=[])
        solution = solve(csp, "ghd")
        assert csp.is_solution(solution)

    @pytest.mark.parametrize("seed", range(10))
    def test_methods_agree_on_random_csps(self, seed):
        csp = random_binary_csp(7, 3, density=0.45, tightness=0.45,
                                seed=seed + 30)
        if not csp.constraints:
            return
        bt = solve(csp, "backtracking")
        td = solve(csp, "td")
        ghd = solve(csp, "ghd")
        assert (bt is None) == (td is None) == (ghd is None)
        if bt is not None:
            assert csp.is_solution(td)
            assert csp.is_solution(ghd)

    def test_n_queens_all_methods(self):
        csp = n_queens_csp(5)
        for method in ("td", "ghd"):
            assert csp.is_solution(solve(csp, method))

    def test_sat_all_methods(self):
        csp = sat_csp([[1, 2], [-1, 3], [-2, -3], [2, 3]])
        expected = csp.solve_backtracking() is not None
        for method in ("td", "ghd"):
            assert (solve(csp, method) is not None) == expected
