"""Cross-module integration tests: the full pipelines the thesis builds.

Each test exercises a complete workflow across several packages —
generator → heuristic → decomposition → search/GA → CSP solving — and
checks end-to-end consistency between independent implementations.
"""

import random

import pytest

from repro.bounds import (
    ghw_lower_bound,
    min_fill_ordering,
    treewidth_lower_bound,
    treewidth_upper_bound,
)
from repro.csp import (
    graph_coloring_csp,
    solve,
    solve_from_ghd,
    solve_from_tree_decomposition,
)
from repro.decomposition import (
    bucket_elimination,
    ghd_from_ordering,
    ghw_ordering_width,
    ordering_from_decomposition,
    ordering_width,
)
from repro.genetic import GAParameters, ga_ghw, ga_treewidth
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    grid2d_hypergraph,
    grid_graph,
    myciel_graph,
    queen_graph,
    random_gnm_graph,
)
from repro.search import (
    SearchBudget,
    astar_ghw,
    astar_treewidth,
    branch_and_bound_ghw,
    branch_and_bound_treewidth,
)
from repro.setcover import exact_set_cover


class TestTreewidthPipeline:
    """heuristic ub >= GA ub >= exact tw >= lb, all consistent."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bound_sandwich(self, seed):
        g = random_gnm_graph(10, 20, seed=seed + 2000)
        lb = treewidth_lower_bound(g)
        exact = astar_treewidth(g)
        assert exact.exact
        ga = ga_treewidth(
            g, GAParameters(population_size=24, generations=30),
            rng=random.Random(seed),
        )
        heuristic = treewidth_upper_bound(g)
        assert lb <= exact.width <= ga.best_fitness <= heuristic + 1
        # GA result is achievable:
        assert ordering_width(g, ga.best_individual) == ga.best_fitness

    def test_astar_equals_bb(self):
        for seed in range(5):
            g = random_gnm_graph(9, 16, seed=seed + 2100)
            a = astar_treewidth(g)
            b = branch_and_bound_treewidth(g)
            assert a.exact and b.exact and a.width == b.width

    def test_decomposition_from_search_witness(self, grid4):
        result = astar_treewidth(grid4)
        td = bucket_elimination(grid4, result.ordering)
        assert td.is_valid(grid4)
        assert td.width == result.width


class TestGhwPipeline:
    def test_bb_astar_ga_consistent(self):
        h = clique_hypergraph(8)
        bb = branch_and_bound_ghw(h)
        astar = astar_ghw(h)
        assert bb.exact and astar.exact and bb.width == astar.width == 4
        ga = ga_ghw(
            h, GAParameters(population_size=20, generations=15),
            rng=random.Random(1),
        )
        assert ga.best_fitness >= bb.width
        assert ghw_lower_bound(h) <= bb.width

    def test_search_witness_builds_valid_ghd(self):
        h = adder_hypergraph(6)
        result = branch_and_bound_ghw(h)
        ghd = ghd_from_ordering(
            h, result.ordering, cover_function=exact_set_cover
        )
        assert ghd.is_valid(h)
        assert ghd.ghw_width == result.width

    def test_chapter3_roundtrip_on_search_output(self):
        """search ordering -> TD -> leaf normal form -> dca ordering:
        the recovered ordering must reach the same exact ghw."""
        h = adder_hypergraph(5)
        result = branch_and_bound_ghw(h)
        td = bucket_elimination(h, result.ordering)
        recovered = ordering_from_decomposition(h, td)
        width = ghw_ordering_width(h, recovered,
                                   cover_function=exact_set_cover)
        assert width == result.width

    def test_ghw_less_than_tw_on_cliques(self):
        h = clique_hypergraph(12)
        tw = astar_treewidth(h, budget=SearchBudget(max_nodes=500))
        ghw = branch_and_bound_ghw(h)
        assert ghw.exact and ghw.width == 6
        assert ghw.width < tw.upper_bound


class TestCSPDecompositionPipeline:
    def test_coloring_via_searched_decomposition(self):
        """Solve a graph colouring CSP from the A*-optimal TD."""
        g = grid_graph(3)
        csp = graph_coloring_csp(g, 3)
        h = csp.constraint_hypergraph()
        result = astar_treewidth(h)
        td = bucket_elimination(h, result.ordering)
        solution = solve_from_tree_decomposition(csp, td)
        assert csp.is_solution(solution)

    def test_coloring_via_ghd(self):
        g = myciel_graph(3)
        csp = graph_coloring_csp(g, 4)  # Grötzsch graph is 4-chromatic
        h = csp.constraint_hypergraph()
        ordering = min_fill_ordering(h)
        ghd = ghd_from_ordering(h, ordering)
        solution = solve_from_ghd(csp, ghd)
        assert csp.is_solution(solution)

    def test_three_coloring_grotzsch_unsat(self):
        csp = graph_coloring_csp(myciel_graph(3), 3)
        assert solve(csp, "td") is None


class TestInstanceWorkflows:
    def test_table_5_2_shape(self):
        """Grid treewidths are exactly n for n <= 5 within small budgets
        (the Table 5.2 reproduction in miniature)."""
        for n in (2, 3, 4, 5):
            result = astar_treewidth(grid_graph(n))
            assert result.exact and result.width == n

    def test_table_7_1_shape_clique_20(self):
        """clique_20: paper's prior ub 10 (= ghw); GA-ghw got 11. Our GA
        should land in [10, 12]."""
        h = clique_hypergraph(20)
        ga = ga_ghw(
            h, GAParameters(population_size=30, generations=30),
            rng=random.Random(7),
        )
        assert 10 <= ga.best_fitness <= 12

    def test_grid2d_ghw_small(self):
        h = grid2d_hypergraph(4)
        result = branch_and_bound_ghw(h)
        assert result.exact
        assert result.width <= 3

    def test_queen5_full_stack(self):
        g = queen_graph(5)
        exact = astar_treewidth(g)
        assert exact.width == 18
        td = bucket_elimination(g, exact.ordering)
        assert td.is_valid(g) and td.width == 18
