"""Width invariants across the registered small exact instances.

A final integration sweep: for every tractable exact-construction
hypergraph in the registry, the bound chain
``ghw_lower <= ghw_exact <= greedy-evaluated upper`` must hold, and the
exact searches must agree with each other.
"""

import pytest

from repro.bounds import ghw_lower_bound, min_fill_ordering
from repro.decomposition import ghw_ordering_width
from repro.instances import get_instance
from repro.search import (
    SearchBudget,
    astar_ghw,
    branch_and_bound_ghw,
)

SMALL_EXACT = [
    "adder_5", "adder_10", "bridge_5",
    "clique_6", "clique_8", "clique_10", "grid2d_4",
]


@pytest.mark.parametrize("name", SMALL_EXACT)
def test_bound_chain(name):
    h = get_instance(name).build()
    lb = ghw_lower_bound(h)
    exact = branch_and_bound_ghw(h, budget=SearchBudget(max_seconds=30))
    ub = ghw_ordering_width(h, min_fill_ordering(h))
    assert exact.exact, name
    assert lb <= exact.width <= ub, (name, lb, exact.width, ub)


@pytest.mark.parametrize("name", SMALL_EXACT[:4])
def test_searches_agree(name):
    h = get_instance(name).build()
    bb = branch_and_bound_ghw(h, budget=SearchBudget(max_seconds=30))
    astar = astar_ghw(h, budget=SearchBudget(max_seconds=30))
    assert bb.exact and astar.exact
    assert bb.width == astar.width, name


def test_known_family_values():
    assert branch_and_bound_ghw(get_instance("adder_10").build()).width == 2
    assert branch_and_bound_ghw(get_instance("clique_10").build()).width == 5
    assert branch_and_bound_ghw(get_instance("bridge_10").build()).width == 2
