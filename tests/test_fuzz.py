"""Tests for the differential fuzz harness (``repro.verify.fuzz``).

The centrepiece is the mutation gate: for every hand-seeded fault in
:data:`repro.verify.fuzz.FAULTS` the fuzzer must report a failure and
shrink it to a small counterexample.  A harness that cannot catch known
faults would give false confidence on the real pipeline.
"""

import json

import pytest

from repro.cli import main
from repro.hypergraph import Graph, Hypergraph
from repro.verify import (
    FAULTS,
    FuzzConfig,
    load_replay,
    run_fuzz,
    run_replay,
    write_replay,
)

# Per-fault knobs: λ / descendant faults only exist on hypergraph
# pipelines, and the GA fault needs the GA check on every case.
_FAULT_SETUP = {
    "drop-lambda-edge": {"families": ("hyper", "circuit")},
    "descendant-leak": {"families": ("hyper", "circuit")},
    "ga-undercut": {"ga_every": 1},
    "fhw-round": {"families": ("hyper", "circuit"), "fhw_every": 1},
    "fhw-integral-cache": {"families": ("hyper", "circuit"), "fhw_every": 1},
    "stitch-drop-cover": {"families": ("hyper", "circuit"),
                          "balanced_every": 1},
    "sat-learn-drop": {"families": ("hyper", "circuit"), "hw_every": 1},
    "optk-descendant-forget": {"families": ("hyper", "circuit"),
                               "hw_every": 1},
}

# Acceptance bar from the issue: every shrunk counterexample stays tiny.
_MAX_SHRUNK_VERTICES = 12


class TestMutationGate:
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_fault_is_detected_and_shrunk(self, fault):
        report = run_fuzz(FuzzConfig(
            seed=5,
            cases=30,
            fault=fault,
            max_failures=1,
            **_FAULT_SETUP.get(fault, {}),
        ))
        assert report.failures, f"fault {fault!r} went undetected"
        failure = report.failures[0]
        assert failure.fault == fault
        assert failure.structure.num_vertices <= _MAX_SHRUNK_VERTICES
        assert failure.structure.num_vertices <= failure.original_vertices

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FuzzConfig(fault="not-a-fault")


class TestCleanRun:
    def test_fault_free_run_is_clean(self):
        report = run_fuzz(seed=1, cases=40)
        assert report.ok
        assert report.cases_run == 40
        counters = report.metrics.snapshot()["counters"]
        assert counters["fuzz.cases"] == 40
        assert counters.get("fuzz.failures", 0) == 0

    def test_runs_are_deterministic(self):
        first = run_fuzz(seed=9, cases=15)
        second = run_fuzz(seed=9, cases=15)
        assert first.ok and second.ok
        assert (first.metrics.snapshot()["counters"]
                == second.metrics.snapshot()["counters"])

    def test_portfolio_cross_check_is_clean(self):
        # The deterministic portfolio is opt-in (it spawns processes);
        # a small run must agree with the standalone exact solvers.
        report = run_fuzz(FuzzConfig(
            seed=2, cases=4, families=("gnm",), portfolio_every=2,
        ))
        assert report.ok

    def test_failures_are_traced_even_without_shrinking(self, tmp_path):
        from repro.telemetry import JsonlTracer

        path = tmp_path / "fuzz.jsonl"
        tracer = JsonlTracer(path)
        report = run_fuzz(FuzzConfig(
            seed=5, cases=30, fault="drop-tree-edge",
            max_failures=1, shrink=False, tracer=tracer,
        ))
        tracer.close()
        assert report.failures
        assert report.failures[0].shrink_steps == 0
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(r["name"] == "fuzz_failure" for r in records)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown families"):
            FuzzConfig(families=("nope",))
        with pytest.raises(ValueError, match="at least one"):
            FuzzConfig(families=())
        with pytest.raises(ValueError, match="non-negative"):
            FuzzConfig(cases=-1)


class TestReplay:
    def _failing_report(self):
        report = run_fuzz(FuzzConfig(
            seed=5, cases=30, fault="drop-tree-edge", max_failures=1,
        ))
        assert report.failures
        return report

    def test_roundtrip_reproduces_and_fix_clears(self, tmp_path):
        failure = self._failing_report().failures[0]
        path = tmp_path / "counterexample.json"
        write_replay(failure, path)

        structure, payload = load_replay(path)
        assert payload["check"] == failure.check
        assert payload["fault"] == "drop-tree-edge"
        assert structure.num_vertices == failure.structure.num_vertices

        # Stored fault re-injected by default: the failure reproduces.
        replay = run_replay(path)
        assert not replay.ok
        assert any(f.check == failure.check for f in replay.failures)
        # Fault disabled (how a fix is confirmed): all checks pass.
        assert run_replay(path, fault=None).ok

    def test_version_gate(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "structure": {}}))
        with pytest.raises(ValueError, match="unsupported replay version"):
            load_replay(path)

    def test_structure_serialization_roundtrip(self, tmp_path):
        from repro.verify.fuzz import (
            _deserialize_structure,
            _serialize_structure,
        )

        g = Graph.from_edges([(1, 2), (2, 3)])
        g2 = _deserialize_structure(json.loads(
            json.dumps(_serialize_structure(g))
        ))
        assert isinstance(g2, Graph)
        assert sorted(map(sorted, g2.edges())) == sorted(map(sorted, g.edges()))

        h = Hypergraph()
        h.add_edge(["a", "b"], name="e1")
        h.add_edge(["b", "c"], name="e2")
        h2 = _deserialize_structure(json.loads(
            json.dumps(_serialize_structure(h))
        ))
        assert isinstance(h2, Hypergraph)
        assert h2.edges == h.edges


class TestFuzzCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "all clean" in out

    def test_list_faults(self, capsys):
        assert main(["fuzz", "--list-faults"]) == 0
        out = capsys.readouterr().out
        for name in FAULTS:
            assert name in out

    def test_injected_fault_fails_and_writes_replay(self, capsys, tmp_path):
        replay = tmp_path / "ce.json"
        assert main([
            "fuzz", "--cases", "30", "--seed", "5",
            "--fault", "drop-tree-edge", "--max-failures", "1",
            "--write-replay", str(replay),
        ]) == 1
        out = capsys.readouterr().out
        assert "failing case" in out
        assert replay.exists()
        # Replaying with the stored fault reproduces; without it, passes.
        assert main(["fuzz", "--replay", str(replay)]) == 1
        capsys.readouterr()
        assert main(["fuzz", "--replay", str(replay),
                     "--fault", "none"]) == 0

    def test_metrics_flag_prints_counters(self, capsys):
        assert main(["fuzz", "--cases", "4", "--seed", "2",
                     "--metrics"]) == 0
        assert "fuzz.cases = 4" in capsys.readouterr().out
