"""Hypertree width proper: the opt-k-decomp and CDCL backends.

Covers the pure-python CDCL solver (watched literals, 1UIP learning,
VSIDS, restarts, assumptions), the ordering+arc hw encoding, the
opt-k-decomp descending ladder with cross-rung dominance records, the
three-way differential det-k == opt-k == cdcl, the golden hw values,
a hand-built descendant-condition instance, the exhausted-ladder CLI
contract, and the hw portfolio/service integration.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.decomposition.htd import HypertreeDecomposition, htd_from_ordering
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import fano_plane_hypergraph
from repro.instances import get_instance
from repro.sat import (
    CDCLSolver,
    EncodingTooLarge,
    HwFormula,
    cdcl_hypertree_width,
)
from repro.sat.solver import SolverBudgetExceeded, _luby
from repro.search import (
    LadderExhausted,
    hypertree_width,
    opt_k_decomp,
    opt_k_hypertree_width,
)
from repro.search.common import BoundHooks
from repro.verify import check_htd
from tests.conftest import make_covered_hypergraph


# ----------------------------------------------------------------------
# The CDCL core
# ----------------------------------------------------------------------


def _php(pigeons: int, holes: int) -> list[list[int]]:
    """Pigeonhole clauses over vars v(p,h) = p*holes + h + 1."""
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestCDCLSolver:
    def test_luby_sequence(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_trivial_sat_and_model(self):
        s = CDCLSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() is True
        assert s.model_value(a) is False
        assert s.model_value(b) is True

    def test_empty_clause_unsat(self):
        s = CDCLSolver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve() is False

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_pigeonhole_unsat(self, n):
        s = CDCLSolver()
        for _ in range(n * (n - 1)):
            s.new_var()
        for clause in _php(n, n - 1):
            s.add_clause(clause)
        assert s.solve() is False

    def test_assumptions_incremental(self):
        """UNSAT under assumptions must not poison later solves: the
        learned clauses are resolvents of base clauses only."""
        s = CDCLSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        assert s.solve([a, -c]) is False  # a forces c
        assert s.solve([a]) is True
        assert s.model_value(c) is True
        assert s.solve([-c]) is True  # still SAT with a free
        assert s.model_value(a) is False

    def test_conflict_budget_raises(self):
        s = CDCLSolver()
        for _ in range(5 * 4):
            s.new_var()
        for clause in _php(5, 4):
            s.add_clause(clause)
        with pytest.raises(SolverBudgetExceeded):
            s.solve(max_conflicts=3)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_cnf_vs_brute_force(self, seed):
        rng = random.Random(seed + 777)
        n = rng.randint(2, 7)
        m = rng.randint(1, 4 * n)
        clauses = []
        for _ in range(m):
            width = rng.randint(1, 3)
            lits = []
            for v in rng.sample(range(1, n + 1), min(width, n)):
                lits.append(v if rng.random() < 0.5 else -v)
            clauses.append(lits)
        brute = any(
            all(
                any(
                    (lit > 0) == bool(bits >> (abs(lit) - 1) & 1)
                    for lit in clause
                )
                for clause in clauses
            )
            for bits in range(1 << n)
        )
        s = CDCLSolver()
        for _ in range(n):
            s.new_var()
        for clause in clauses:
            s.add_clause(clause)
        got = s.solve()
        assert got == brute, (seed, clauses)
        if got:
            for clause in clauses:
                assert any(
                    s.model_value(abs(lit)) == (lit > 0) for lit in clause
                ), (seed, clause)


# ----------------------------------------------------------------------
# The hw encoding
# ----------------------------------------------------------------------


class TestHwEncoding:
    def test_triangle_completeness_trap(self):
        """The triangle has NO model under a pure fill-closure bag
        encoding; the bag-extension variables make k=2 SAT.  This is
        the regression that pins the encoding's completeness."""
        tri = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        formula = HwFormula(tri, max_k=2)
        assert formula.solve(1) is False
        assert formula.solve(2) is True
        htd = formula.decode()
        assert check_htd(htd, tri, claimed_width=2) == []

    def test_incremental_ladder_shares_solver(self):
        h = fano_plane_hypergraph()
        formula = HwFormula(h, max_k=3)
        assert formula.solve(3) is True
        htd = formula.decode()
        assert check_htd(htd, h, claimed_width=3) == []
        assert formula.solve(2) is False  # same solver, new assumptions
        # ... and the k=3 question still answers SAT afterwards.
        assert formula.solve(3) is True

    def test_assumptions_outside_ladder_rejected(self):
        tri = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        formula = HwFormula(tri, max_k=2)
        with pytest.raises(ValueError):
            formula.assumptions(3)
        with pytest.raises(ValueError):
            formula.assumptions(0)

    def test_size_guard(self):
        h = make_covered_hypergraph(8, 10, seed=991)
        with pytest.raises(EncodingTooLarge):
            HwFormula(h, max_k=3, max_clauses=50)

    def test_driver_empty_hypergraph(self):
        result = cdcl_hypertree_width(Hypergraph())
        assert result.exact and result.upper == result.lower == 0

    def test_driver_budget_returns_bracket(self):
        h = make_covered_hypergraph(7, 9, seed=452)
        result = cdcl_hypertree_width(h, max_conflicts=1)
        assert result.lower <= result.upper
        assert result.decomposition is not None
        assert result.decomposition.violations(h) == []


# ----------------------------------------------------------------------
# opt-k-decomp
# ----------------------------------------------------------------------


class TestOptKDecomp:
    def test_isolated_vertices_rejected(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(ValueError):
            opt_k_decomp(h)

    def test_max_width_validated(self):
        with pytest.raises(ValueError):
            opt_k_decomp(Hypergraph(edges={"e": {1, 2}}), max_width=0)

    def test_edgeless(self):
        result = opt_k_decomp(Hypergraph())
        assert result.exact and result.width == 0

    def test_triangle(self):
        tri = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        result = opt_k_decomp(tri)
        assert result.exact and result.width == 2
        assert result.decomposition.violations(tri) == []

    def test_ladder_exhausted_below_width(self):
        tri = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        with pytest.raises(LadderExhausted):
            opt_k_hypertree_width(tri, max_width=1)

    def test_state_budget_yields_anytime_bracket(self):
        h = make_covered_hypergraph(7, 9, seed=7)
        result = opt_k_decomp(h, max_states=1)
        assert result.lower <= result.upper
        assert result.decomposition is not None
        assert result.decomposition.violations(h) == []

    def test_bound_hooks_can_close_the_ladder(self):
        """An external exact bound arriving between rungs ends the
        search without re-proving what the portfolio already knows."""
        h = make_covered_hypergraph(6, 8, seed=41)
        hw, _ = hypertree_width(h)
        published = []
        hooks = BoundHooks(
            poll_upper=lambda: hw,
            poll_lower=lambda: hw,
            publish_upper=published.append,
            publish_lower=published.append,
        )
        result = opt_k_decomp(h, hooks=hooks)
        assert result.exact
        assert result.width == hw
        assert published  # bounds were shared back

    @pytest.mark.parametrize("seed", range(20))
    def test_differential_det_k(self, seed):
        """The PR's audit satellite: opt-k-decomp and det-k-decomp land
        on the same width on every instance (they enumerate identical
        separator sequences via the shared ``_iter_separators``)."""
        h = make_covered_hypergraph(6, 8, seed=seed + 14000)
        det_hw, det_htd = hypertree_width(h)
        result = opt_k_decomp(h)
        assert result.exact, seed
        assert result.width == det_hw, seed
        assert result.decomposition.violations(h) == [], seed
        assert result.decomposition.ghw_width == det_hw, seed

    def test_cross_rung_records_reused(self):
        """Widths stay correct while the cache layer records cross-rung
        reuse (the metrics counter is the observable)."""
        from repro.telemetry import Metrics

        h = make_covered_hypergraph(7, 9, seed=31)
        metrics = Metrics()
        result = opt_k_decomp(h, metrics=metrics)
        det_hw, _ = hypertree_width(h)
        assert result.exact and result.width == det_hw
        if result.rungs > 1:
            counters = metrics.snapshot()["counters"]
            assert counters.get("cache.cross_component_hit", 0) >= 0


# ----------------------------------------------------------------------
# Three-way differential and the Hypothesis property
# ----------------------------------------------------------------------


@st.composite
def covered_hypergraphs(draw, max_vertices=6):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=1, max_value=n + 2))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return make_covered_hypergraph(n, m, seed=seed)


class TestThreeWayDifferential:
    @settings(max_examples=25, deadline=None)
    @given(covered_hypergraphs())
    def test_cdcl_matches_opt_k(self, h):
        """The PR's acceptance property: the CDCL backend and
        opt-k-decomp agree on every instance where the SAT search
        closes its bracket."""
        optk = opt_k_decomp(h)
        cdcl = cdcl_hypertree_width(h, max_conflicts=20000)
        assert optk.exact
        assert cdcl.lower <= optk.width <= cdcl.upper
        if cdcl.exact:
            assert cdcl.upper == optk.width
            assert cdcl.decomposition.violations(h) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_all_three_agree(self, seed):
        h = make_covered_hypergraph(6, 7, seed=seed + 15000)
        det_hw, _ = hypertree_width(h)
        optk = opt_k_decomp(h)
        cdcl = cdcl_hypertree_width(h, max_conflicts=50000)
        assert optk.exact and optk.width == det_hw, seed
        assert cdcl.exact and cdcl.upper == det_hw, seed


# ----------------------------------------------------------------------
# Golden widths and the descendant condition
# ----------------------------------------------------------------------

GOLDEN_HWS = {"fano": 3, "clique_5": 3}


class TestGoldenHw:
    @pytest.mark.parametrize("name,width", sorted(GOLDEN_HWS.items()))
    def test_golden_opt_k(self, name, width):
        result = opt_k_decomp(get_instance(name).build())
        assert result.exact
        assert result.width == width

    @pytest.mark.parametrize("name,width", sorted(GOLDEN_HWS.items()))
    def test_golden_cdcl(self, name, width):
        result = cdcl_hypertree_width(get_instance(name).build())
        assert result.exact
        assert result.upper == width

    def test_golden_queen5_5(self):
        """hw(queen5_5) = 10.  Lower bound: the published tw = 18 gives
        ghw ≥ ⌈(tw+1)/2⌉ = 10 for a graph (binary edges), and
        hw ≥ ghw.  Upper bound: a seeded random-restart over
        ``htd_from_ordering`` witnesses width 10 (min-fill alone gives
        11); the witness is certified.  The instance is far beyond the
        exact searches, so the bound pair IS the proof."""
        h = get_instance("queen5_5").build()
        if not isinstance(h, Hypergraph):
            h = Hypergraph.from_graph(h)

        # Any certified witness at width 10 closes the question.
        rng = random.Random(0)
        best = None
        for _ in range(30):
            ordering = list(h.vertex_list())
            rng.shuffle(ordering)
            htd = htd_from_ordering(h, ordering)
            width = htd.ghw_width
            if best is None or width < best[0]:
                assert htd.violations(h) == []
                best = (width, htd)
            if best[0] <= 10:
                break
        assert best[0] == 10, f"restart search found width {best[0]}"
        # The graph-side lower bound: tw = 18 is pinned by the golden
        # treewidth suite; ghw(G) ≥ ⌈(tw+1)/2⌉ because a binary-edge
        # bag of ghw k holds at most 2k vertices.
        tw_golden = 18
        assert -(-(tw_golden + 1) // 2) == 10

    def test_descendant_condition_hand_instance(self):
        """A hand-built path decomposition that satisfies every GHD
        condition but leaks a λ-vertex into its subtree: check_htd must
        flag exactly the descendant condition, and all three hw
        backends must still produce valid width-1 witnesses for the
        underlying (acyclic) hypergraph."""
        h = Hypergraph(edges={
            "e1": {1, 2}, "e2": {2, 3}, "e3": {3, 4},
        })
        htd = HypertreeDecomposition(root="p")
        htd.add_node("p", bag={1, 2}, cover={"e1"})
        # The bug: λ(q) also grabs e3, whose vertex 4 reappears below q
        # but is not in χ(q).
        htd.add_node("q", bag={2, 3}, cover={"e2", "e3"})
        htd.add_node("r", bag={3, 4}, cover={"e3"})
        htd.add_tree_edge("p", "q")
        htd.add_tree_edge("q", "r")
        from repro.verify.certificate import check_ghd

        assert check_ghd(htd, h) == []  # a perfectly fine GHD ...
        problems = check_htd(htd, h)
        assert problems, "descendant leak went unflagged"
        assert any("descendant" in str(p).lower() for p in problems)

        det_hw, det_htd = hypertree_width(h)
        optk = opt_k_decomp(h)
        cdcl = cdcl_hypertree_width(h)
        assert det_hw == optk.width == cdcl.upper == 1
        for witness in (det_htd, optk.decomposition, cdcl.decomposition):
            assert witness.violations(h) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_hw_at_least_ghw(self, seed):
        from repro.search import branch_and_bound_ghw

        h = make_covered_hypergraph(6, 8, seed=seed + 16000)
        ghw = branch_and_bound_ghw(h).width
        assert opt_k_decomp(h).width >= ghw, seed
        cdcl = cdcl_hypertree_width(h, max_conflicts=50000)
        if cdcl.exact:
            assert cdcl.upper >= ghw, seed


# ----------------------------------------------------------------------
# Witness payloads
# ----------------------------------------------------------------------


class TestWitnessPayload:
    def test_roundtrip(self):
        h = fano_plane_hypergraph()
        result = opt_k_decomp(h)
        payload = result.decomposition.to_payload()
        rebuilt = HypertreeDecomposition.from_payload(payload)
        assert rebuilt.violations(h) == []
        assert rebuilt.ghw_width == result.width
        assert rebuilt.to_payload() == payload

    def test_payload_is_json_shaped(self):
        import json

        h = make_covered_hypergraph(5, 6, seed=77)
        result = opt_k_decomp(h)
        payload = result.decomposition.to_payload()
        rebuilt = HypertreeDecomposition.from_payload(
            json.loads(json.dumps(payload))
        )
        assert rebuilt.violations(h) == []


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------


class TestCli:
    @pytest.mark.parametrize("backend", ["optk", "detk", "cdcl"])
    def test_hw_backends(self, backend, capsys):
        from repro.cli import main

        assert main(["hw", "fano", "--backend", backend]) == 0
        out = capsys.readouterr().out
        assert "hypertree width = 3" in out

    @pytest.mark.parametrize("backend", ["optk", "detk", "cdcl"])
    def test_exhausted_ladder_exits_2_with_diagnostic(self, backend,
                                                      capsys):
        """The bugfix satellite: an exhausted width ladder is an open
        question, not an answer — one line on stderr, exit code 2, and
        crucially NOT the silent success the old path produced."""
        from repro.cli import main

        code = main(["hw", "fano", "--max-width", "2",
                     "--backend", backend])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        assert captured.err.startswith("error: hw:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_max_width_zero_exhausts_immediately(self, capsys):
        """max_width=0 must not silently round up to 1 (the old
        det-k-decomp ladder bug)."""
        from repro.cli import main

        code = main(["hw", "fano", "--max-width", "0",
                     "--backend", "detk"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: hw:")


# ----------------------------------------------------------------------
# Portfolio integration
# ----------------------------------------------------------------------


class TestHwPortfolio:
    def test_deterministic_race_on_fano(self):
        from repro.portfolio import run_portfolio

        h = fano_plane_hypergraph()
        result = run_portfolio(
            h, metric="hw", jobs=2, deterministic=True, max_nodes=50000,
        )
        assert result.metric == "hw"
        assert result.exact
        assert result.width == 3
        assert result.ordering is None
        assert result.witness is not None
        rebuilt = HypertreeDecomposition.from_payload(result.witness)
        assert rebuilt.violations(h) == []
        assert rebuilt.ghw_width == 3
        assert set(result.reports) == {"optk-hw", "cdcl-hw", "min-fill-hw"}
        for report in result.reports.values():
            assert report.error is None

    def test_live_race_exchanges_bounds(self):
        from repro.portfolio import run_portfolio

        h = fano_plane_hypergraph()
        result = run_portfolio(
            h, metric="hw", jobs=2, max_nodes=50000, budget_seconds=60.0,
        )
        assert result.exact and result.width == 3
        assert result.witness is not None
