"""Unit tests for repro.hypergraph.hypergraph.Hypergraph."""

import pytest

from repro.hypergraph import Graph, Hypergraph, HypergraphError


class TestConstruction:
    def test_from_edges_autonames(self):
        h = Hypergraph.from_edges([{1, 2}, {2, 3, 4}])
        assert h.edge_names() == ["e0", "e1"]
        assert h.num_vertices == 4

    def test_named_edges(self, example_hypergraph):
        assert example_hypergraph.edge("C1") == frozenset({"x1", "x2", "x3"})
        assert example_hypergraph.num_edges == 3

    def test_duplicate_name_rejected(self):
        h = Hypergraph()
        h.add_edge({1, 2}, name="a")
        with pytest.raises(HypergraphError):
            h.add_edge({3, 4}, name="a")

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph().add_edge([])

    def test_from_graph(self, triangle):
        h = Hypergraph.from_graph(triangle)
        assert h.num_edges == 3
        assert all(len(e) == 2 for e in h.edges.values())

    def test_copy_independent(self, example_hypergraph):
        clone = example_hypergraph.copy()
        clone.add_edge({"x9"}, name="extra")
        assert "extra" not in example_hypergraph.edges


class TestQueries:
    def test_edges_containing(self, example_hypergraph):
        assert example_hypergraph.edges_containing("x1") == {"C1", "C2"}
        assert example_hypergraph.edges_containing("x4") == {"C3"}

    def test_edges_containing_unknown(self, example_hypergraph):
        with pytest.raises(HypergraphError):
            example_hypergraph.edges_containing("nope")

    def test_rank(self, example_hypergraph):
        assert example_hypergraph.rank() == 3
        assert Hypergraph().rank() == 0

    def test_isolated_vertices(self):
        h = Hypergraph(vertices=[1, 2, 3], edges={"a": {1, 2}})
        assert h.isolated_vertices() == {3}

    def test_len_iter_contains(self, example_hypergraph):
        assert len(example_hypergraph) == 6
        assert "x3" in example_hypergraph
        assert set(example_hypergraph) == {
            "x1", "x2", "x3", "x4", "x5", "x6"
        }


class TestMutation:
    def test_remove_edge(self, example_hypergraph):
        example_hypergraph.remove_edge("C2")
        assert example_hypergraph.num_edges == 2
        assert "C2" not in example_hypergraph.edges_containing("x1")

    def test_remove_unknown_edge(self, example_hypergraph):
        with pytest.raises(HypergraphError):
            example_hypergraph.remove_edge("zzz")

    def test_remove_vertex_shrinks_edges(self, example_hypergraph):
        example_hypergraph.remove_vertex("x1")
        assert example_hypergraph.edge("C1") == frozenset({"x2", "x3"})
        assert "x1" not in example_hypergraph

    def test_remove_vertex_drops_empty_edges(self):
        h = Hypergraph(edges={"solo": {1}})
        h.remove_vertex(1)
        assert h.num_edges == 0

    def test_remove_unknown_vertex(self, example_hypergraph):
        with pytest.raises(HypergraphError):
            example_hypergraph.remove_vertex("nope")


class TestDerivedGraphs:
    def test_primal_graph(self, example_hypergraph):
        primal = example_hypergraph.primal_graph()
        assert isinstance(primal, Graph)
        # x1-x2, x1-x3, x2-x3 from C1; x1-x5, x1-x6, x5-x6 from C2; ...
        assert primal.has_edge("x1", "x2")
        assert primal.has_edge("x5", "x6")
        assert primal.has_edge("x3", "x4")
        assert not primal.has_edge("x2", "x4")
        assert primal.num_edges == 9

    def test_primal_of_graph_hypergraph_is_same_graph(self, grid4):
        h = Hypergraph.from_graph(grid4)
        assert h.primal_graph() == grid4

    def test_dual_graph(self, example_hypergraph):
        dual = example_hypergraph.dual_graph()
        assert set(dual.vertex_list()) == {"C1", "C2", "C3"}
        # all three constraints pairwise share a variable
        assert dual.num_edges == 3

    def test_induced_hypergraph(self, example_hypergraph):
        sub = example_hypergraph.induced_hypergraph({"x1", "x2", "x3", "x4"})
        assert sub.edge("C1") == frozenset({"x1", "x2", "x3"})
        assert sub.edge("C3") == frozenset({"x3", "x4"})
        assert sub.edge("C2") == frozenset({"x1"})

    def test_induced_drops_empty(self, example_hypergraph):
        sub = example_hypergraph.induced_hypergraph({"x4"})
        assert sub.edge_names() == ["C3"]


class TestEquality:
    def test_equality(self):
        a = Hypergraph(edges={"e": {1, 2}})
        b = Hypergraph(edges={"e": {2, 1}})
        assert a == b

    def test_inequality_different_names(self):
        a = Hypergraph(edges={"e": {1, 2}})
        b = Hypergraph(edges={"f": {1, 2}})
        assert a != b
