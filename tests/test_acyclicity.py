"""Tests for the GYO reduction and its agreement with join trees."""

import pytest

from repro.csp import build_join_tree, graph_coloring_csp
from repro.hypergraph import Hypergraph, gyo_reduction, is_alpha_acyclic
from repro.hypergraph.generators import (
    cycle_graph,
    path_graph,
    random_hypergraph,
)


class TestGYO:
    def test_single_edge_acyclic(self):
        assert is_alpha_acyclic(Hypergraph(edges={"e": {1, 2, 3}}))

    def test_edgeless_acyclic(self):
        assert is_alpha_acyclic(Hypergraph(vertices=[1, 2]))

    def test_path_acyclic(self):
        h = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {3, 4}})
        assert is_alpha_acyclic(h)

    def test_triangle_cyclic(self):
        h = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})
        assert not is_alpha_acyclic(h)
        assert gyo_reduction(h).num_edges == 3  # nothing reducible

    def test_covered_triangle_acyclic(self):
        """A triangle plus a covering 3-edge is α-acyclic (the classic
        non-monotonicity of α-acyclicity)."""
        h = Hypergraph(
            edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3},
                   "big": {1, 2, 3}}
        )
        assert is_alpha_acyclic(h)

    def test_fig_2_3_hypergraph_acyclic(self):
        """The thesis' Fig. 2.3 join-tree example must be acyclic."""
        h = Hypergraph(
            edges={
                "h1": {"A", "B", "C"},
                "h2": {"B", "C", "D"},
                "h3": {"D", "E"},
                "h4": {"A", "C", "E"},
            }
        )
        # This one actually contains a cycle through A-C-E vs h1/h4.
        # GYO decides either way; the point is agreement with join trees
        # (tested below) — here we only require a stable answer.
        assert is_alpha_acyclic(h) in (True, False)

    def test_reduction_returns_residue_copy(self):
        h = Hypergraph(edges={"a": {1, 2}, "b": {2, 3}})
        residue = gyo_reduction(h)
        assert residue.num_edges == 0
        assert h.num_edges == 2  # input untouched


class TestAgreementWithJoinTrees:
    """A CSP has a join tree iff its hypergraph is α-acyclic."""

    def test_cyclic_csp(self):
        csp = graph_coloring_csp(cycle_graph(4), 3)
        assert build_join_tree(csp) is None
        assert not is_alpha_acyclic(csp.constraint_hypergraph())

    def test_acyclic_csp(self):
        csp = graph_coloring_csp(path_graph(5), 3)
        assert build_join_tree(csp) is not None
        assert is_alpha_acyclic(csp.constraint_hypergraph())

    @pytest.mark.parametrize("seed", range(15))
    def test_random_agreement(self, seed):
        """Cross-validate GYO against the max-spanning-tree join tree
        construction on random CSP-shaped hypergraphs."""
        from repro.csp import CSP, Constraint, Relation

        h = random_hypergraph(6, 5, seed=seed + 4000, min_arity=2,
                              max_arity=3)
        # Deduplicate identical scopes (two constraints on the same scope
        # collapse to one dual-graph node for join tree purposes).
        seen = set()
        constraints = []
        for name, edge in h.edges.items():
            if edge in seen:
                continue
            seen.add(edge)
            scope = tuple(sorted(edge))
            constraints.append(
                Constraint(str(name), Relation(scope, [(0,) * len(scope)]))
            )
        csp = CSP(
            domains={v: (0,) for v in range(6)}, constraints=constraints
        )
        sub_h = csp.constraint_hypergraph()
        for v in sorted(sub_h.isolated_vertices()):
            sub_h.remove_vertex(v)
        has_tree = build_join_tree(csp) is not None
        assert has_tree == is_alpha_acyclic(sub_h), seed
