"""Tests for tournament selection, the GA engine, GA-tw, GA-ghw and
SAIGA-ghw."""

import random

import pytest

from repro.decomposition import ordering_width
from repro.genetic import (
    GAParameters,
    SAIGAParameters,
    ga_ghw,
    ga_treewidth,
    ghw_fitness,
    run_permutation_ga,
    saiga_ghw,
    tournament_select_index,
    tournament_selection,
)
from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    cycle_graph,
    grid_graph,
    path_graph,
    queen_graph,
)
from repro.search import astar_treewidth, branch_and_bound_ghw


class TestTournament:
    def test_selects_best_with_large_group(self, rng):
        fitnesses = [5.0, 1.0, 3.0]
        winner = tournament_select_index(fitnesses, group_size=50, rng=rng)
        assert winner == 1

    def test_selection_size(self, rng):
        population = [[0, 1], [1, 0]]
        selected = tournament_selection(population, [1.0, 2.0], 2, rng)
        assert len(selected) == 2
        selected = tournament_selection(population, [1.0, 2.0], 2, rng, count=5)
        assert len(selected) == 5

    def test_selection_copies(self, rng):
        population = [[0, 1, 2]]
        selected = tournament_selection(population, [1.0], 1, rng)
        selected[0][0] = 99
        assert population[0][0] == 0

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_select_index([], 2, rng)

    def test_bad_group_size(self, rng):
        with pytest.raises(ValueError):
            tournament_select_index([1.0], 0, rng)

    def test_pressure_increases_with_group_size(self):
        rng = random.Random(0)
        fitnesses = list(range(100))
        small = [tournament_select_index(fitnesses, 2, rng) for _ in range(300)]
        big = [tournament_select_index(fitnesses, 8, rng) for _ in range(300)]
        assert sum(big) < sum(small)


class TestEngine:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GAParameters(population_size=1).validate()
        with pytest.raises(ValueError):
            GAParameters(crossover_rate=1.5).validate()
        with pytest.raises(ValueError):
            GAParameters(mutation_rate=-0.1).validate()
        with pytest.raises(ValueError):
            GAParameters(crossover="NOPE").validate()
        with pytest.raises(ValueError):
            GAParameters(mutation="NOPE").validate()
        GAParameters().validate()

    def test_minimizes_simple_objective(self):
        """Sorting as a permutation GA problem: fitness counts inversions."""
        def inversions(perm):
            return sum(
                1
                for i in range(len(perm))
                for j in range(i + 1, len(perm))
                if perm[i] > perm[j]
            )

        result = run_permutation_ga(
            elements=list(range(8)),
            fitness=inversions,
            parameters=GAParameters(population_size=40, generations=60),
            rng=random.Random(7),
        )
        assert result.best_fitness <= 2  # near-sorted

    def test_history_monotone(self):
        result = run_permutation_ga(
            elements=list(range(6)),
            fitness=lambda p: p.index(0),
            parameters=GAParameters(population_size=10, generations=15),
            rng=random.Random(1),
        )
        assert all(
            a >= b for a, b in zip(result.history, result.history[1:])
        )

    def test_seed_individuals(self):
        seed_perm = list(range(6))
        result = run_permutation_ga(
            elements=list(range(6)),
            fitness=lambda p: sum(
                1 for i, v in enumerate(p) if v != i
            ),
            parameters=GAParameters(population_size=8, generations=0),
            rng=random.Random(2),
            seed_individuals=[seed_perm],
        )
        assert result.best_fitness == 0

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            run_permutation_ga(
                elements=[1, 2, 3],
                fitness=len,
                parameters=GAParameters(population_size=4, generations=1),
                rng=random.Random(0),
                seed_individuals=[[1, 2]],
            )

    def test_time_budget_stops_early(self):
        result = run_permutation_ga(
            elements=list(range(30)),
            fitness=lambda p: 0,
            parameters=GAParameters(population_size=20, generations=10**6),
            rng=random.Random(0),
            max_seconds=0.2,
        )
        assert result.generations_run < 10**6

    def test_reproducible(self):
        def fit(p):
            return p.index(3)

        a = run_permutation_ga(
            list(range(8)), fit,
            GAParameters(population_size=10, generations=10),
            random.Random(5),
        )
        b = run_permutation_ga(
            list(range(8)), fit,
            GAParameters(population_size=10, generations=10),
            random.Random(5),
        )
        assert a.best_individual == b.best_individual
        assert a.history == b.history


class TestGATreewidth:
    def test_finds_optimum_on_easy_graphs(self):
        for graph, optimum in [
            (path_graph(10), 1),
            (cycle_graph(8), 2),
            (grid_graph(3), 3),
        ]:
            result = ga_treewidth(
                graph,
                GAParameters(population_size=30, generations=40),
                rng=random.Random(3),
            )
            assert result.best_fitness == optimum

    def test_queen5_reaches_18(self):
        result = ga_treewidth(
            queen_graph(5),
            GAParameters(population_size=40, generations=50),
            rng=random.Random(1),
        )
        assert result.best_fitness == 18

    def test_result_is_achievable_width(self, grid4):
        result = ga_treewidth(
            grid4, GAParameters(population_size=20, generations=20),
            rng=random.Random(2),
        )
        assert ordering_width(grid4, result.best_individual) == \
            result.best_fitness

    def test_upper_bound_of_true_treewidth(self, grid4):
        result = ga_treewidth(
            grid4, GAParameters(population_size=10, generations=5),
            rng=random.Random(4),
        )
        assert result.best_fitness >= astar_treewidth(grid4).width

    def test_empty_graph(self):
        from repro.hypergraph import Graph

        result = ga_treewidth(Graph())
        assert result.best_fitness == 0

    def test_heuristic_seeding(self, grid4):
        result = ga_treewidth(
            grid4, GAParameters(population_size=10, generations=0),
            rng=random.Random(0), seed_with_heuristics=True,
        )
        assert result.best_fitness <= 6  # min-fill quality at generation 0


class TestGAGhw:
    def test_fitness_matches_manual(self, example_hypergraph):
        ordering = example_hypergraph.vertex_list()
        width = ghw_fitness(example_hypergraph, ordering)
        assert width >= 2

    def test_finds_optimum_on_example(self, example_hypergraph):
        result = ga_ghw(
            example_hypergraph,
            GAParameters(population_size=20, generations=20),
            rng=random.Random(1),
        )
        assert result.best_fitness == 2

    def test_adder_small(self):
        result = ga_ghw(
            adder_hypergraph(8),
            GAParameters(population_size=30, generations=40),
            rng=random.Random(2),
        )
        assert result.best_fitness <= 3  # ghw = 2; greedy may cost one

    def test_upper_bound_of_true_ghw(self):
        h = clique_hypergraph(8)
        result = ga_ghw(
            h, GAParameters(population_size=16, generations=10),
            rng=random.Random(3),
        )
        assert result.best_fitness >= branch_and_bound_ghw(h).width

    def test_isolated_vertices_rejected(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(ValueError):
            ga_ghw(h)

    def test_heuristic_seeding_matches_min_fill(self):
        """Seeded GA-ghw starts at the min-fill baseline (extension)."""
        from repro.bounds import min_fill_ordering
        from repro.decomposition import ghw_ordering_width

        h = adder_hypergraph(15)
        baseline = ghw_ordering_width(h, min_fill_ordering(h))
        result = ga_ghw(
            h, GAParameters(population_size=8, generations=0),
            rng=random.Random(0), seed_with_heuristics=True,
            rescore_exact=False,
        )
        assert result.best_fitness <= baseline

    def test_rescore_exact_not_larger(self):
        h = clique_hypergraph(10)
        greedy = ga_ghw(
            h, GAParameters(population_size=12, generations=8),
            rng=random.Random(4), rescore_exact=False,
        )
        exact = ga_ghw(
            h, GAParameters(population_size=12, generations=8),
            rng=random.Random(4), rescore_exact=True,
        )
        assert exact.best_fitness <= greedy.best_fitness


class TestSAIGA:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SAIGAParameters(num_islands=1).validate()
        with pytest.raises(ValueError):
            SAIGAParameters(island_population=1).validate()
        SAIGAParameters().validate()

    def test_finds_optimum_on_example(self, example_hypergraph):
        result = saiga_ghw(
            example_hypergraph,
            SAIGAParameters(num_islands=3, island_population=10, epochs=5),
            rng=random.Random(1),
        )
        assert result.best_fitness == 2

    def test_parameters_stay_in_range(self):
        from repro.genetic import PARAMETER_RANGES

        result = saiga_ghw(
            clique_hypergraph(8),
            SAIGAParameters(num_islands=4, island_population=8, epochs=6),
            rng=random.Random(2),
        )
        for vector in result.final_parameters:
            lo, hi = PARAMETER_RANGES["crossover_rate"]
            assert lo <= vector.crossover_rate <= hi
            lo, hi = PARAMETER_RANGES["mutation_rate"]
            assert lo <= vector.mutation_rate <= hi
            lo, hi = PARAMETER_RANGES["tournament_size"]
            assert lo <= vector.tournament_size <= hi

    def test_competitive_with_plain_ga(self):
        """SAIGA's promise: roughly match tuned GA without tuning."""
        h = adder_hypergraph(8)
        plain = ga_ghw(
            h, GAParameters(population_size=32, generations=24),
            rng=random.Random(5),
        )
        adaptive = saiga_ghw(
            h,
            SAIGAParameters(num_islands=4, island_population=8, epochs=6),
            rng=random.Random(5),
        )
        assert adaptive.best_fitness <= plain.best_fitness + 1

    def test_isolated_vertices_rejected(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(ValueError):
            saiga_ghw(h)

    def test_reports_evaluations(self):
        result = saiga_ghw(
            clique_hypergraph(6),
            SAIGAParameters(num_islands=2, island_population=6, epochs=3),
            rng=random.Random(0),
        )
        assert result.evaluations >= 2 * 6 * 3
