"""Focused tests for SAIGA's self-adaptation machinery (§7.2.2–7.2.5)."""

import random

import pytest

from repro.genetic import PARAMETER_RANGES, ParameterVector


class TestParameterVector:
    def test_random_within_ranges(self):
        rng = random.Random(0)
        for _ in range(50):
            vector = ParameterVector.random(rng)
            lo, hi = PARAMETER_RANGES["crossover_rate"]
            assert lo <= vector.crossover_rate <= hi
            lo, hi = PARAMETER_RANGES["mutation_rate"]
            assert lo <= vector.mutation_rate <= hi
            lo, hi = PARAMETER_RANGES["tournament_size"]
            assert lo <= vector.tournament_size <= hi
            assert isinstance(vector.tournament_size, int)

    def test_mutation_stays_within_ranges(self):
        rng = random.Random(1)
        vector = ParameterVector.random(rng)
        for _ in range(100):
            vector = vector.mutated(rng, scale=0.2)
            lo, hi = PARAMETER_RANGES["crossover_rate"]
            assert lo <= vector.crossover_rate <= hi
            lo, hi = PARAMETER_RANGES["mutation_rate"]
            assert lo <= vector.mutation_rate <= hi
            lo, hi = PARAMETER_RANGES["tournament_size"]
            assert lo <= vector.tournament_size <= hi

    def test_mutation_with_zero_scale_is_identity_ish(self):
        rng = random.Random(2)
        vector = ParameterVector(0.8, 0.2, 3)
        mutated = vector.mutated(rng, scale=0.0)
        assert mutated.crossover_rate == pytest.approx(0.8)
        assert mutated.mutation_rate == pytest.approx(0.2)
        assert mutated.tournament_size == 3

    def test_orientation_moves_halfway(self):
        rng = random.Random(3)
        a = ParameterVector(0.6, 0.1, 2)
        b = ParameterVector(1.0, 0.3, 4)
        moved = a.oriented_toward(b, step=0.5, rng=rng)
        assert moved.crossover_rate == pytest.approx(0.8)
        assert moved.mutation_rate == pytest.approx(0.2)
        assert moved.tournament_size == 3

    def test_orientation_full_step_reaches_target(self):
        rng = random.Random(4)
        a = ParameterVector(0.6, 0.1, 2)
        b = ParameterVector(0.9, 0.4, 5)
        moved = a.oriented_toward(b, step=1.0, rng=rng)
        assert moved.crossover_rate == pytest.approx(0.9)
        assert moved.mutation_rate == pytest.approx(0.4)
        assert moved.tournament_size == 5

    def test_orientation_zero_step_is_identity(self):
        rng = random.Random(5)
        a = ParameterVector(0.7, 0.25, 3)
        moved = a.oriented_toward(ParameterVector(1.0, 0.5, 5), 0.0, rng)
        assert moved.crossover_rate == pytest.approx(0.7)
        assert moved.mutation_rate == pytest.approx(0.25)
        assert moved.tournament_size == 3


class TestIslandMigration:
    def test_migrant_replaces_worst(self):
        from repro.genetic.saiga import _Island

        rng = random.Random(6)
        island = _Island(
            vertices=list(range(5)),
            fitness=lambda perm: perm.index(0),  # smaller is better
            size=4,
            vector=ParameterVector(0.9, 0.2, 2),
            rng=rng,
        )
        worst_before = max(island.fitnesses)
        migrant = [0, 1, 2, 3, 4]  # fitness 0, the best possible
        island.immigrate(migrant, 0)
        assert 0 in island.fitnesses
        assert island.fitnesses.count(worst_before) <= \
            [island.fitness_fn(ind) for ind in island.population].count(
                worst_before
            ) + 1
