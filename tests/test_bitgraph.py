"""Property-based equivalence suite for the bitset kernel.

:class:`repro.hypergraph.bitgraph.BitGraph` must be observationally
equivalent to the reference :class:`repro.hypergraph.graph.Graph` — not
just "same answers" but the same *orders*: ``vertex_list`` mirrors the
dict insertion order, restore re-appends at the end, and tie-breaks in
every consumer (searches, orderings, bounds) resolve identically.  These
tests drive both kernels through random operation sequences and through
the production consumers, comparing exhaustively.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.bounds import min_fill_ordering, minor_min_width
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.bitgraph import BitGraph, as_bitgraph
from repro.search import SearchBudget, brute_force_treewidth
from repro.search.astar_tw import astar_treewidth
from repro.search.bb_tw import branch_and_bound_treewidth
from repro.search.pruning import swap_equivalent
from repro.setcover import greedy_set_cover

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    ) if possible else []
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    return g


@st.composite
def op_sequences(draw, max_vertices=7, max_ops=14):
    """A start graph plus a random op script exercising the mutable API.

    Structural ops (remove_vertex / remove_edge / contract_edge) are only
    drawn while the undo stack is empty — both kernels forbid them with
    pending eliminations — and op arguments are drawn as indices into the
    *current* vertex list so the script stays valid as the graph shrinks.
    """
    g = draw(graphs(max_vertices))
    ops = []
    depth = 0  # eliminations not yet restored
    present = len(g)
    for _ in range(draw(st.integers(min_value=0, max_value=max_ops))):
        choices = ["add_edge"]
        if present > 0:
            choices += ["eliminate", "eliminate"]
        if depth > 0:
            choices += ["restore", "restore"]
        if depth == 0 and present > 0:
            choices += ["remove_vertex", "remove_edge", "contract_edge"]
        op = draw(st.sampled_from(choices))
        if op == "add_edge":
            if present < 2:
                continue
            i = draw(st.integers(min_value=0, max_value=present - 1))
            j = draw(st.integers(min_value=0, max_value=present - 1))
            if i == j:
                continue
            ops.append(("add_edge", i, j))
        elif op == "eliminate":
            ops.append(("eliminate", draw(st.integers(0, present - 1))))
            depth += 1
            present -= 1
        elif op == "restore":
            ops.append(("restore",))
            depth -= 1
            present += 1
        elif op == "remove_vertex":
            ops.append(("remove_vertex", draw(st.integers(0, present - 1))))
            present -= 1
        elif op == "remove_edge":
            i = draw(st.integers(min_value=0, max_value=present - 1))
            j = draw(st.integers(min_value=0, max_value=present - 1))
            if i == j:
                continue
            ops.append(("remove_edge", i, j))
        elif op == "contract_edge":
            if present < 2:
                continue
            i = draw(st.integers(min_value=0, max_value=present - 1))
            j = draw(st.integers(min_value=0, max_value=present - 1))
            if i == j:
                continue
            ops.append(("contract_edge", i, j))
            present -= 1
    return g, ops


def assert_same_observations(ref: Graph, bit: BitGraph) -> None:
    """Every read-only observation must agree, including orders."""
    assert bit.vertex_list() == ref.vertex_list()
    assert bit.num_edges == ref.num_edges
    assert len(bit) == len(ref)
    assert sorted(map(repr, bit.edges())) == sorted(map(repr, ref.edges()))
    for v in ref.vertex_list():
        assert v in bit
        assert bit.neighbors(v) == ref.neighbors(v)
        assert bit.degree(v) == ref.degree(v)
        assert bit.fill_in_count(v) == ref.fill_in_count(v)
        assert bit.is_simplicial(v) == ref.is_simplicial(v)
        # Any neighbor whose exclusion leaves a clique is a valid witness,
        # and the kernels may pick different ones — the searches only
        # branch on existence, so compare None-ness and validity.
        w_ref = ref.almost_simplicial_witness(v)
        w_bit = bit.almost_simplicial_witness(v)
        assert (w_bit is None) == (w_ref is None)
        if w_bit is not None:
            assert w_bit in ref.neighbors(v)
            assert ref.is_clique(ref.neighbors(v) - {w_bit})
    assert (
        sorted(map(sorted, bit.connected_components()))
        == sorted(map(sorted, ref.connected_components()))
    )
    assert bit.to_graph() == ref


# ----------------------------------------------------------------------
# Kernel equivalence under random op sequences
# ----------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(op_sequences())
def test_bitgraph_tracks_graph_through_op_sequences(case):
    ref, ops = case
    bit = as_bitgraph(ref)
    assert_same_observations(ref, bit)
    for op in ops:
        vl = ref.vertex_list()
        if op[0] == "add_edge":
            u, v = vl[op[1]], vl[op[2]]
            ref.add_edge(u, v)
            bit.add_edge(u, v)
        elif op[0] == "eliminate":
            v = vl[op[1]]
            r_ref = ref.eliminate(v)
            r_bit = bit.eliminate(v)
            assert r_bit.vertex == r_ref.vertex
            assert r_bit.neighbors == r_ref.neighbors
            assert (
                sorted(map(sorted, r_bit.fill_edges))
                == sorted(map(sorted, r_ref.fill_edges))
            )
        elif op[0] == "restore":
            r_ref = ref.restore()
            r_bit = bit.restore()
            assert r_bit.vertex == r_ref.vertex
        elif op[0] == "remove_vertex":
            v = vl[op[1]]
            ref.remove_vertex(v)
            bit.remove_vertex(v)
        elif op[0] == "remove_edge":
            u, v = vl[op[1]], vl[op[2]]
            if not ref.has_edge(u, v):
                continue  # both kernels raise on non-edges
            ref.remove_edge(u, v)
            bit.remove_edge(u, v)
        elif op[0] == "contract_edge":
            u, v = vl[op[1]], vl[op[2]]
            if not ref.has_edge(u, v):
                continue  # both kernels raise on non-edges
            ref.contract_edge(u, v)
            bit.contract_edge(u, v)
        assert_same_observations(ref, bit)


@settings(max_examples=60, deadline=None)
@given(graphs(max_vertices=8))
def test_copy_is_independent(ref):
    bit = as_bitgraph(ref)
    clone = bit.copy()
    for v in list(bit.vertex_list()):
        bit.eliminate(v)
    assert len(bit) == 0
    assert_same_observations(ref, clone)


@settings(max_examples=60, deadline=None)
@given(graphs(max_vertices=8))
def test_swap_equivalent_matches_reference(ref):
    bit = as_bitgraph(ref)
    vl = ref.vertex_list()
    for v in vl:
        for w in vl:
            if v != w:
                assert swap_equivalent(bit, v, w) == swap_equivalent(ref, v, w)


# ----------------------------------------------------------------------
# Production consumers: same results on either kernel
# ----------------------------------------------------------------------


def _minfill_set_reference(graph, rng=None):
    """Pre-kernel incremental min-fill over the Graph set API."""
    fill = {v: graph.fill_in_count(v) for v in graph.vertex_list()}
    ordering = []
    while len(graph) > 0:
        best_fill = min(fill.values())
        candidates = [v for v, f in fill.items() if f == best_fill]
        if rng is not None and len(candidates) > 1:
            vertex = candidates[rng.randrange(len(candidates))]
        else:
            vertex = min(candidates, key=repr)
        ordering.append(vertex)
        affected = graph.neighbors(vertex)
        record = graph.eliminate(vertex)
        for a, b in record.fill_edges:
            affected.add(a)
            affected.add(b)
            affected |= graph.neighbors(a) & graph.neighbors(b)
        del fill[vertex]
        for u in affected:
            if u in fill:
                fill[u] = graph.fill_in_count(u)
    return ordering


@settings(max_examples=60, deadline=None)
@given(graphs(max_vertices=9), st.integers(min_value=0, max_value=2**20))
def test_min_fill_matches_set_reference(ref, seed):
    assert min_fill_ordering(ref) == _minfill_set_reference(ref.copy())
    assert min_fill_ordering(ref, random.Random(seed)) == _minfill_set_reference(
        ref.copy(), random.Random(seed)
    )


def _mmw_reference(graph):
    """Reference minor-min-width over the Graph set API (Fig. 4.7)."""
    g = graph.copy()
    bound = 0
    while len(g) > 0:
        degree = {v: g.degree(v) for v in g.vertex_list()}
        best_d = min(degree.values())
        vertex = min(
            (v for v in degree if degree[v] == best_d), key=repr
        )
        bound = max(bound, best_d)
        nbrs = g.neighbors(vertex)
        if not nbrs:
            g.remove_vertex(vertex)
            continue
        least = min(degree[u] for u in nbrs)
        neighbor = min((u for u in nbrs if degree[u] == least), key=repr)
        g.contract_edge(neighbor, vertex)
    return bound


@settings(max_examples=80, deadline=None)
@given(graphs(max_vertices=9))
def test_minor_min_width_matches_reference(ref):
    assert minor_min_width(ref) == _mmw_reference(ref)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=8), st.booleans())
def test_astar_kernels_agree_node_for_node(ref, memoize):
    r_set = astar_treewidth(ref, kernel="set", memoize=memoize)
    r_bit = astar_treewidth(ref, kernel="bit", memoize=memoize)
    assert r_bit.width == r_set.width
    assert r_bit.ordering == r_set.ordering
    assert r_bit.stats.nodes_expanded == r_set.stats.nodes_expanded
    assert r_bit.width == brute_force_treewidth(ref)


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=8))
def test_bb_kernels_agree_node_for_node(ref):
    r_set = branch_and_bound_treewidth(ref, kernel="set")
    r_bit = branch_and_bound_treewidth(ref, kernel="bit")
    assert r_bit.width == r_set.width
    assert r_bit.ordering == r_set.ordering
    assert r_bit.stats.nodes_expanded == r_set.stats.nodes_expanded


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=10))
def test_astar_budget_parity_under_truncation(ref):
    budget_set = SearchBudget(max_nodes=25)
    budget_bit = SearchBudget(max_nodes=25)
    r_set = astar_treewidth(ref, budget=budget_set, kernel="set")
    r_bit = astar_treewidth(ref, budget=budget_bit, kernel="bit")
    assert r_bit.upper_bound == r_set.upper_bound
    assert r_bit.lower_bound == r_set.lower_bound
    assert r_bit.stats.nodes_expanded == r_set.stats.nodes_expanded


# ----------------------------------------------------------------------
# Hypergraph incidence index / greedy cover fast path
# ----------------------------------------------------------------------


@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    h = Hypergraph()
    for e in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        h.add_edge(members, f"e{e}")
    return h


@settings(max_examples=60, deadline=None)
@given(hypergraphs(), st.data())
def test_greedy_cover_bitmask_path_is_valid_and_deterministic(h, data):
    vertices = sorted(h.vertices)
    bag = data.draw(
        st.lists(st.sampled_from(vertices), max_size=len(vertices), unique=True)
    )
    cover = greedy_set_cover(bag, h)
    covered = set()
    for name in cover:
        covered |= h.edge(name)
    assert set(bag) <= covered
    assert len(set(cover)) == len(cover)
    # Deterministic: same call, same answer.
    assert greedy_set_cover(bag, h) == cover
