"""Tests for the relational algebra layer."""

import pytest

from repro.csp import Relation, RelationError, cartesian_relation


@pytest.fixture
def r():
    return Relation(("x", "y"), [(1, 2), (1, 3), (2, 3)])


@pytest.fixture
def s():
    return Relation(("y", "z"), [(2, 9), (3, 8), (7, 7)])


class TestConstruction:
    def test_basic(self, r):
        assert r.schema == ("x", "y")
        assert len(r) == 3
        assert not r.is_empty

    def test_duplicate_rows_collapse(self):
        rel = Relation(("a",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(RelationError):
            Relation(("a", "a"), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RelationError):
            Relation(("a", "b"), [(1,)])

    def test_nullary_relation(self):
        truthy = Relation((), [()])
        falsy = Relation((), [])
        assert not truthy.is_empty
        assert falsy.is_empty


class TestAlgebra:
    def test_project(self, r):
        p = r.project(("y",))
        assert p.schema == ("y",)
        assert p.tuples == frozenset({(2,), (3,)})

    def test_project_reorders(self, r):
        p = r.project(("y", "x"))
        assert (2, 1) in p.tuples

    def test_project_unknown(self, r):
        with pytest.raises(RelationError):
            r.project(("zzz",))

    def test_select_equals(self, r):
        sel = r.select_equals({"x": 1})
        assert sel.tuples == frozenset({(1, 2), (1, 3)})

    def test_select_unknown(self, r):
        with pytest.raises(RelationError):
            r.select_equals({"zzz": 1})

    def test_rename(self, r):
        renamed = r.rename({"x": "a"})
        assert renamed.schema == ("a", "y")
        assert renamed.tuples == r.tuples

    def test_natural_join(self, r, s):
        joined = r.natural_join(s)
        assert joined.schema == ("x", "y", "z")
        assert joined.tuples == frozenset(
            {(1, 2, 9), (1, 3, 8), (2, 3, 8)}
        )

    def test_join_disjoint_is_product(self):
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("y",), [(5,)])
        assert len(a.natural_join(b)) == 2

    def test_join_empty(self, r):
        empty = Relation(("y", "z"), [])
        assert r.natural_join(empty).is_empty

    def test_semijoin(self, r, s):
        reduced = r.semijoin(s)
        assert reduced.schema == r.schema
        assert reduced.tuples == r.tuples  # every y of r appears in s

    def test_semijoin_filters(self, r):
        other = Relation(("y",), [(2,)])
        reduced = r.semijoin(other)
        assert reduced.tuples == frozenset({(1, 2)})

    def test_semijoin_disjoint_schema(self, r):
        nonempty = Relation(("q",), [(0,)])
        empty = Relation(("q",), [])
        assert r.semijoin(nonempty) == r
        assert r.semijoin(empty).is_empty

    def test_matching(self, r):
        m = r.matching({"x": 1, "unrelated": 99})
        assert m.tuples == frozenset({(1, 2), (1, 3)})

    def test_any_row_as_assignment(self, r):
        row = r.any_row_as_assignment()
        assert set(row) == {"x", "y"}
        assert tuple(row.values()) in {(1, 2), (1, 3), (2, 3)}

    def test_any_row_empty_raises(self):
        with pytest.raises(RelationError):
            Relation(("a",), []).any_row_as_assignment()


class TestEquality:
    def test_column_order_irrelevant(self):
        a = Relation(("x", "y"), [(1, 2)])
        b = Relation(("y", "x"), [(2, 1)])
        assert a == b

    def test_different_attributes(self):
        a = Relation(("x",), [(1,)])
        b = Relation(("y",), [(1,)])
        assert a != b


class TestCartesian:
    def test_product(self):
        rel = cartesian_relation(("a", "b"), {"a": [1, 2], "b": "xy"})
        assert len(rel) == 4

    def test_empty_attrs(self):
        rel = cartesian_relation((), {})
        assert rel.tuples == frozenset({()})

    def test_join_semantics(self):
        rel = cartesian_relation(("a", "b"), {"a": [1], "b": [2, 3]})
        constraint = Relation(("a", "b"), [(1, 2)])
        assert rel.natural_join(constraint).tuples == frozenset({(1, 2)})
