"""Unit tests for graph / hypergraph text formats."""

import pytest

from repro.hypergraph import (
    DuplicateEdgeWarning,
    FormatError,
    Graph,
    parse_dimacs,
    parse_hypergraph,
    write_dimacs,
    write_hypergraph,
    write_tree_decomposition,
)
from repro.hypergraph.generators import queen_graph


class TestDimacs:
    def test_parse_simple(self):
        text = "c a comment\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n"
        g = parse_dimacs(text)
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.has_edge(2, 3)

    def test_parse_ignores_duplicates_and_loops(self):
        text = "p edge 3 4\ne 1 2\ne 2 1\ne 1 1\ne 2 3\n"
        with pytest.warns(DuplicateEdgeWarning, match="line 3"):
            g = parse_dimacs(text)
        assert g.num_edges == 2

    def test_parse_tolerates_trailing_whitespace_and_blanks(self):
        text = "c header comment   \n\np edge 3 2  \n   \ne 1 2\t\nc mid\ne 2 3   \n\n"
        g = parse_dimacs(text)
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_parse_missing_header(self):
        with pytest.raises(FormatError):
            parse_dimacs("e 1 2\n")

    def test_parse_bad_record(self):
        with pytest.raises(FormatError):
            parse_dimacs("p edge 2 1\nx 1 2\n")

    def test_parse_declares_isolated_vertices(self):
        g = parse_dimacs("p edge 5 1\ne 1 2\n")
        assert g.num_vertices == 5
        assert g.degree(5) == 0

    def test_roundtrip(self):
        g = queen_graph(4)
        text = write_dimacs(g, name="queen4_4")
        parsed = parse_dimacs(text)
        assert parsed.num_vertices == g.num_vertices
        assert parsed.num_edges == g.num_edges

    def test_write_relabels_to_one_based(self):
        g = Graph.from_edges([("a", "b")])
        text = write_dimacs(g)
        assert "e 1 2" in text


class TestPaceFormat:
    def test_parse(self):
        from repro.hypergraph import parse_pace_graph

        g = parse_pace_graph("c comment\np tw 4 3\n1 2\n2 3\n3 4\n")
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_parse_missing_header(self):
        from repro.hypergraph import parse_pace_graph

        with pytest.raises(FormatError):
            parse_pace_graph("1 2\n")

    def test_parse_warns_on_duplicate_edges(self):
        from repro.hypergraph import parse_pace_graph

        with pytest.warns(DuplicateEdgeWarning, match="line 4"):
            g = parse_pace_graph("p tw 3 3\n1 2\n2 3\n3 2\n")
        assert g.num_edges == 2

    def test_parse_bad_header(self):
        from repro.hypergraph import parse_pace_graph

        with pytest.raises(FormatError):
            parse_pace_graph("p edge 2 1\n1 2\n")

    def test_roundtrip(self):
        from repro.hypergraph import parse_pace_graph, write_pace_graph

        g = queen_graph(4)
        parsed = parse_pace_graph(write_pace_graph(g))
        assert parsed.num_vertices == g.num_vertices
        assert parsed.num_edges == g.num_edges

    def test_cli_accepts_pace_files(self, tmp_path):
        from repro.cli import load_structure
        from repro.hypergraph import Graph, write_pace_graph

        path = tmp_path / "toy.gr"
        path.write_text(write_pace_graph(Graph.from_edges([(1, 2)])))
        loaded = load_structure(str(path))
        assert isinstance(loaded, Graph)
        assert loaded.num_edges == 1


class TestHypergraphFormat:
    def test_parse(self):
        text = "C1(x1, x2, x3),\nC2(x1,x5,x6),\nC3(x3,x4,x5).\n"
        h = parse_hypergraph(text)
        assert h.num_edges == 3
        assert h.edge("C2") == frozenset({"x1", "x5", "x6"})

    def test_parse_skips_comments_and_blanks(self):
        text = "% comment\n\n// other comment\nfoo(a,b),\n"
        h = parse_hypergraph(text)
        assert h.num_edges == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(FormatError):
            parse_hypergraph("not an edge line\n")

    def test_parse_rejects_empty_edge(self):
        with pytest.raises(FormatError):
            parse_hypergraph("foo(),\n")

    def test_parse_tolerates_trailing_whitespace(self):
        text = "foo(a,b),   \n\t\nbar(b,c).\t\n"
        h = parse_hypergraph(text)
        assert h.num_edges == 2

    def test_duplicate_identical_edge_warns_and_dedupes(self):
        text = "foo(a,b),\nbar(b,c),\nfoo(b, a),\n"
        with pytest.warns(DuplicateEdgeWarning, match="line 3"):
            h = parse_hypergraph(text)
        assert h.num_edges == 2
        assert h.edge("foo") == frozenset({"a", "b"})

    def test_duplicate_conflicting_edge_rejected(self):
        text = "foo(a,b),\nfoo(a,c),\n"
        with pytest.raises(FormatError, match="redeclared"):
            parse_hypergraph(text)

    def test_roundtrip(self, example_hypergraph):
        text = write_hypergraph(example_hypergraph)
        parsed = parse_hypergraph(text)
        assert parsed.num_edges == example_hypergraph.num_edges
        assert set(parsed.edge_names()) == set(
            example_hypergraph.edge_names()
        )


class TestTreeDecompositionFormat:
    def test_write(self):
        text = write_tree_decomposition(
            bags={"a": [1, 2], "b": [2, 3]},
            tree_edges=[("a", "b")],
            num_graph_vertices=3,
        )
        lines = text.splitlines()
        assert lines[0] == "s td 2 2 3"
        assert "b 1 1 2" in lines
        assert "b 2 2 3" in lines
        assert "1 2" in lines
