"""Tests for the decomposition renderers."""

from repro.decomposition import (
    GeneralizedHypertreeDecomposition,
    TreeDecomposition,
    bucket_elimination,
)
from repro.decomposition.render import (
    render_tree_decomposition,
    summarize_decomposition,
)
from repro.bounds import min_fill_ordering
from repro.hypergraph.generators import grid_graph


def small_td():
    td = TreeDecomposition()
    td.add_node("a", {1, 2})
    td.add_node("b", {2, 3})
    td.add_node("c", {3, 4})
    td.add_tree_edge("a", "b")
    td.add_tree_edge("b", "c")
    return td


class TestRender:
    def test_empty(self):
        assert "empty" in render_tree_decomposition(TreeDecomposition())

    def test_single_node(self):
        td = TreeDecomposition()
        td.add_node("only", {1, 2, 3})
        text = render_tree_decomposition(td)
        assert text == "{1, 2, 3}"

    def test_chain(self):
        text = render_tree_decomposition(small_td(), root="a")
        lines = text.splitlines()
        assert lines[0] == "{1, 2}"
        assert "└── {2, 3}" in lines[1]
        assert "{3, 4}" in lines[2]

    def test_branching_connectors(self):
        td = TreeDecomposition()
        td.add_node("r", {0})
        td.add_node("x", {1})
        td.add_node("y", {2})
        td.add_tree_edge("r", "x")
        td.add_tree_edge("r", "y")
        text = render_tree_decomposition(td, root="r")
        assert "├── " in text and "└── " in text

    def test_ghd_shows_lambdas(self):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node("p", bag={1, 2}, cover={"e1", "e2"})
        text = render_tree_decomposition(ghd)
        assert "[e1, e2]" in text

    def test_every_node_appears(self):
        g = grid_graph(3)
        td = bucket_elimination(g, min_fill_ordering(g))
        text = render_tree_decomposition(td)
        assert len(text.splitlines()) == td.num_nodes


class TestSummary:
    def test_empty(self):
        assert summarize_decomposition(TreeDecomposition()) == \
            "empty decomposition"

    def test_td_summary(self):
        text = summarize_decomposition(small_td())
        assert text.startswith("TD: 3 nodes, width 1")
        assert "2:3" in text  # three bags of size 2

    def test_ghd_summary(self):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node("p", bag={1, 2, 3}, cover={"e1"})
        text = summarize_decomposition(ghd)
        assert text.startswith("GHD: 1 nodes, width 1")
