"""Tests for maximum cardinality search and chordality."""

import pytest

from repro.bounds import (
    chordal_treewidth,
    fill_in_of_ordering,
    is_chordal,
    is_perfect_elimination_ordering,
    mcs_ordering,
)
from repro.hypergraph import Graph
from repro.hypergraph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_gnm_graph,
)
from repro.search import brute_force_treewidth


def chordal_example():
    """A 2-tree (chordal, treewidth 2)."""
    g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
    g.add_edge(1, 3), g.add_edge(2, 3)
    g.add_edge(2, 4), g.add_edge(3, 4)
    return g


class TestMCS:
    def test_ordering_is_permutation(self, grid4):
        ordering = mcs_ordering(grid4)
        assert sorted(map(repr, ordering)) == sorted(
            map(repr, grid4.vertex_list())
        )

    def test_perfect_on_chordal(self):
        g = chordal_example()
        assert is_perfect_elimination_ordering(g, mcs_ordering(g))

    def test_perfect_on_trees(self):
        g = path_graph(8)
        assert is_perfect_elimination_ordering(g, mcs_ordering(g))

    def test_perfect_on_complete(self):
        g = complete_graph(6)
        assert is_perfect_elimination_ordering(g, mcs_ordering(g))

    def test_imperfect_on_cycles(self, cycle5):
        assert not is_perfect_elimination_ordering(
            cycle5, mcs_ordering(cycle5)
        )

    def test_rng_variant_still_valid(self, grid4, rng):
        ordering = mcs_ordering(grid4, rng)
        assert set(ordering) == set(grid4.vertex_list())


class TestChordality:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: path_graph(6), True),
            (lambda: complete_graph(5), True),
            (lambda: chordal_example(), True),
            (lambda: cycle_graph(4), False),
            (lambda: cycle_graph(6), False),
            (lambda: grid_graph(3), False),
            (lambda: Graph(), True),
            (lambda: Graph(vertices=[1]), True),
        ],
    )
    def test_known_cases(self, builder, expected):
        assert is_chordal(builder()) is expected

    def test_fill_in_counts(self, cycle5):
        # a cycle ordering 0..4 fills exactly 2 chords
        assert fill_in_of_ordering(cycle5, [0, 1, 2, 3, 4]) == 2
        assert fill_in_of_ordering(path_graph(4), [0, 1, 2, 3]) == 0

    def test_chordal_treewidth_exact(self):
        g = chordal_example()
        assert chordal_treewidth(g) == 2 == brute_force_treewidth(g)

    def test_chordal_treewidth_tree(self):
        assert chordal_treewidth(path_graph(9)) == 1

    def test_chordal_treewidth_rejects_cycles(self, cycle5):
        with pytest.raises(ValueError):
            chordal_treewidth(cycle5)

    @pytest.mark.parametrize("seed", range(8))
    def test_chordal_after_fill_in(self, seed):
        """Eliminating a graph and adding the fill edges always yields a
        chordal graph (the triangulation)."""
        g = random_gnm_graph(8, 14, seed=seed + 7000)
        triangulated = g.copy()
        scratch = g.copy()
        for v in list(g.vertex_list()):
            record = scratch.eliminate(v)
            for a, b in record.fill_edges:
                triangulated.add_edge(a, b)
        assert is_chordal(triangulated)

    @pytest.mark.parametrize("seed", range(6))
    def test_chordal_treewidth_vs_astar(self, seed):
        """On triangulations, MCS width equals the exact treewidth."""
        from repro.search import astar_treewidth

        g = random_gnm_graph(7, 10, seed=seed + 7100)
        triangulated = g.copy()
        scratch = g.copy()
        for v in list(g.vertex_list()):
            record = scratch.eliminate(v)
            for a, b in record.fill_edges:
                triangulated.add_edge(a, b)
        assert chordal_treewidth(triangulated) == \
            astar_treewidth(triangulated).width
