"""Equivalence suite for the bitmask cover engine.

The engine must be an invisible swap-in for the frozenset reference
implementations: greedy covers name-identical to
:func:`~repro.setcover.greedy.greedy_set_cover` with ``rng=None``, exact
covers size-identical to :func:`~repro.setcover.exact.exact_set_cover`,
and — the part only property testing can pin down — dominance-cache
answers that never contradict a direct computation, no matter what query
history warmed the cache.  The incremental GA evaluator is held to the
same standard against :func:`~repro.genetic.ga_ghw.ghw_fitness`.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.genetic.ga_ghw import PrefixGhwEvaluator, ghw_fitness
from repro.hypergraph import Hypergraph
from repro.setcover import (
    BitCoverEngine,
    CoverCache,
    SetCoverError,
    exact_set_cover,
    greedy_set_cover,
)
from repro.telemetry import Metrics


@st.composite
def covered_hypergraphs(draw, max_vertices=7, max_edges=7):
    """Random hypergraphs with no isolated vertices (every cover query
    is then answerable)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        edges.append(members)
    h = Hypergraph.from_edges(edges) if edges else Hypergraph()
    for v in range(n):
        if v not in h or v in h.isolated_vertices():
            h.add_edge({v, (v + 1) % n}, name=f"cover{v}")
    return h


@st.composite
def hypergraphs_with_bags(draw, max_vertices=7, max_edges=7, max_bags=12):
    """A covered hypergraph plus a stream of random vertex-subset bags —
    the query histories that warm (and could corrupt) the cache."""
    h = draw(covered_hypergraphs(max_vertices, max_edges))
    vertices = h.vertex_list()
    num_bags = draw(st.integers(min_value=1, max_value=max_bags))
    bags = [
        frozenset(
            draw(
                st.lists(
                    st.sampled_from(vertices),
                    min_size=1,
                    max_size=len(vertices),
                    unique=True,
                )
            )
        )
        for _ in range(num_bags)
    ]
    return h, bags


class TestGreedyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(hypergraphs_with_bags())
    def test_greedy_names_identical(self, case):
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:
            assert engine.greedy_cover(engine.mask_of(bag)) == \
                greedy_set_cover(bag, h, rng=None)

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs_with_bags())
    def test_greedy_size_memo_never_substitutes(self, case):
        """The strict greedy memo (the GA fitness path) returns the
        Fig. 7.2 value even after exact results seeded the upper layer."""
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:  # warm exact layer first
            engine.exact_size(engine.mask_of(bag))
        for bag in bags:
            assert engine.greedy_size(engine.mask_of(bag)) == len(
                greedy_set_cover(bag, h, rng=None)
            )

    def test_empty_bag(self, example_hypergraph):
        engine = BitCoverEngine(example_hypergraph)
        assert engine.greedy_cover(0) == []
        assert engine.exact_cover(0) == []
        assert engine.exact_size(0) == 0
        assert engine.upper_size(0) == 0


class TestExactEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(hypergraphs_with_bags())
    def test_exact_sizes_identical(self, case):
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:
            assert engine.exact_size(engine.mask_of(bag)) == len(
                exact_set_cover(bag, h)
            )

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs_with_bags())
    def test_exact_cover_is_a_minimum_witness(self, case):
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:
            cover = engine.exact_cover(engine.mask_of(bag))
            union = frozenset().union(*(h.edge(n) for n in cover), frozenset())
            assert bag <= union
            assert len(cover) == len(exact_set_cover(bag, h))

    def test_classic_greedy_trap(self):
        h = Hypergraph(
            edges={
                "top": {1, 2, 3, 4},
                "bottom": {5, 6, 7, 8},
                "middle": {3, 4, 5, 6, 9},
            }
        )
        engine = BitCoverEngine(h)
        bag = engine.mask_of({1, 2, 3, 4, 5, 6, 7, 8})
        assert engine.exact_size(bag) == 2
        assert engine.greedy_cover(bag) == greedy_set_cover(
            {1, 2, 3, 4, 5, 6, 7, 8}, h, rng=None
        )

    def test_branching_beats_greedy(self):
        """An instance where greedy grabs the big middle edge and pays
        for it — the branch-and-bound must return the smaller cover."""
        h = Hypergraph(
            edges={
                "top": {1, 2, 3, 4},
                "bottom": {5, 6, 7, 8},
                "middle": {2, 3, 4, 5, 6},  # largest restricted gain
            }
        )
        engine = BitCoverEngine(h)
        bag = engine.mask_of({1, 2, 3, 4, 5, 6, 7, 8})
        assert len(engine.greedy_cover(bag)) == 3
        assert engine.exact_size(bag) == 2
        assert sorted(engine.exact_cover(bag)) == ["bottom", "top"]

    def test_mask_roundtrip(self, example_hypergraph):
        engine = BitCoverEngine(example_hypergraph)
        bag = {"x1", "x3", "x5"}
        assert set(engine.mask_to_vertices(engine.mask_of(bag))) == bag


class TestDominanceNeverContradicts:
    """Satellite 3's core claim: whatever query history warmed the
    cache, its answers equal (exact) or validly bound (upper) what a
    cold engine computes directly."""

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs_with_bags(), st.randoms(use_true_random=False))
    def test_warm_exact_equals_cold_exact(self, case, rng):
        h, bags = case
        warm = BitCoverEngine(h)
        # Interleave exact / greedy / upper queries in random order to
        # populate every cache layer before re-asking.
        history = [(kind, bag) for bag in bags for kind in range(3)]
        rng.shuffle(history)
        for kind, bag in history:
            mask = warm.mask_of(bag)
            if kind == 0:
                warm.exact_size(mask)
            elif kind == 1:
                warm.greedy_size(mask)
            else:
                warm.upper_size(mask, good_enough=rng.randrange(1, 5))
        for bag in bags:
            cold = len(exact_set_cover(bag, h))
            assert warm.exact_size(warm.mask_of(bag)) == cold

    def test_ceiling_equal_minimum_not_poisoned_by_greedy_fallback(self):
        """Regression: querying a superset caches a size-2 cover, which
        seeds the subset's branch and bound as a *strict* upper bound.
        The subset's true minimum is also 2, so the search exhausts and
        used to fall back to the greedy cover (size 3 here), caching 3
        as the exact answer."""
        h = Hypergraph(
            edges={
                "a": {2, 3, 5},
                "b": {2, 3, 4},
                "c": {1, 4, 5},
                "d": {1, 2, 3, 4},
                "e": {0, 2, 3},
                "f": {0, 3, 4},
            }
        )
        engine = BitCoverEngine(h)
        assert engine.exact_size(engine.mask_of({0, 1, 2, 3, 5})) == 2
        assert len(greedy_set_cover({0, 1, 3, 5}, h, rng=None)) == 3
        assert engine.exact_size(engine.mask_of({0, 1, 3, 5})) == len(
            exact_set_cover({0, 1, 3, 5}, h)
        )

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs_with_bags(), st.randoms(use_true_random=False))
    def test_streamed_superset_then_subset_chains(self, case, rng):
        """Every exact_size answer along superset-before-subset query
        streams (the pattern that warms ceilings for later subsets)
        matches the frozenset reference on a single shared engine."""
        h, bags = case
        engine = BitCoverEngine(h)
        queries = []
        for bag in bags:
            queries.append(bag)
            chain = set(bag)
            while len(chain) > 1:
                chain.discard(rng.choice(sorted(chain, key=repr)))
                queries.append(frozenset(chain))
        for bag in queries:
            assert engine.exact_size(engine.mask_of(bag)) == len(
                exact_set_cover(bag, h)
            )

    @settings(max_examples=60, deadline=None)
    @given(hypergraphs_with_bags())
    def test_upper_is_sandwiched(self, case):
        """Without ``good_enough``, upper_size lies in [exact, greedy];
        with it, the answer is still the size of some valid cover (never
        below exact)."""
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:
            mask = engine.mask_of(bag)
            upper = engine.upper_size(mask)
            assert len(exact_set_cover(bag, h)) <= upper
            assert upper <= len(greedy_set_cover(bag, h, rng=None))
        thresholded = BitCoverEngine(h)
        for bag in bags:  # warm with exact answers to enable dominance
            thresholded.exact_size(thresholded.mask_of(bag))
        for g in (1, 2, 3):
            for bag in bags:
                upper = thresholded.upper_size(
                    thresholded.mask_of(bag), good_enough=g
                )
                assert upper >= len(exact_set_cover(bag, h))

    @settings(max_examples=40, deadline=None)
    @given(hypergraphs_with_bags())
    def test_restricted_rank_matches_direct(self, case):
        h, bags = case
        engine = BitCoverEngine(h)
        for bag in bags:
            direct = max(
                (len(members & bag) for members in h.edges.values()),
                default=0,
            )
            assert engine.restricted_rank(engine.mask_of(bag)) == max(
                1, direct
            )


class TestCoverCache:
    def test_exact_seeds_cover_layer(self):
        cache = CoverCache()
        cache.store_cover(0b111, 3)
        cache.store_exact(0b111, 2)
        assert cache.cover[0b111] == 2
        assert cache.c_seeded.value == 1

    def test_superset_bound_returns_smallest_superset(self):
        cache = CoverCache()
        cache.store_cover(0b1111, 4)
        cache.store_cover(0b0111, 2)
        assert cache.superset_bound(0b0011) == 2
        assert cache.superset_bound(0b1000) == 4
        assert cache.superset_bound(0b10000) is None

    def test_superset_bound_limit_stops_scan(self):
        cache = CoverCache()
        cache.store_cover(0b1111, 4)
        assert cache.superset_bound(0b0011, limit=3) is None
        assert cache.superset_bound(0b0011, limit=4) == 4

    def test_subset_bound_returns_largest_exact_subset(self):
        cache = CoverCache()
        cache.store_exact(0b0001, 1)
        cache.store_exact(0b0111, 3)
        assert cache.subset_bound(0b1111) == 3
        assert cache.subset_bound(0b0011) == 1
        assert cache.subset_bound(0b1000) == 0
        # The floor short-circuits the scan when it cannot be beaten.
        assert cache.subset_bound(0b1111, floor=3) == 3
        assert cache.subset_bound(0b1000, floor=2) == 2

    def test_store_cover_keeps_minimum(self):
        cache = CoverCache()
        cache.store_cover(0b11, 5)
        cache.store_cover(0b11, 3)
        cache.store_cover(0b11, 4)
        assert cache.cover[0b11] == 3

    def test_scan_cap_bounds_both_walks(self):
        from repro.setcover.bitcover import DOMINANCE_SCAN_CAP

        cache = CoverCache()
        for i in range(DOMINANCE_SCAN_CAP + 10):
            cache.store_cover(1 << i, 1)
            cache.store_exact(1 << i, 1)
        probe = 1 << (DOMINANCE_SCAN_CAP + 100)
        assert cache.superset_bound(probe) is None
        assert cache.subset_bound(probe) == 0

    def test_upper_size_takes_smaller_superset_cover(
        self, example_hypergraph
    ):
        """A cached superset cover smaller than the bag's own greedy
        result wins (it is a valid cover of the bag too)."""
        engine = BitCoverEngine(example_hypergraph)
        bag = engine.mask_of({"x1", "x4"})
        greedy = len(engine.greedy_cover(bag))
        assert greedy > 1
        superset = engine.mask_of({"x1", "x2", "x4"})
        engine.cache.store_cover(superset, 1)
        assert engine.upper_size(bag) == 1


class TestCounters:
    def test_hit_and_dominance_counters_export(self, example_hypergraph):
        metrics = Metrics()
        engine = BitCoverEngine(example_hypergraph, metrics=metrics)
        mask = engine.mask_of({"x1", "x2", "x3"})
        engine.exact_size(mask)
        engine.exact_size(mask)
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["cover.exact.computed"] == 1
        assert snapshot["cover.exact.hit"] == 1


class TestErrors:
    def test_mask_of_unknown_vertex_raises(self, example_hypergraph):
        engine = BitCoverEngine(example_hypergraph)
        with pytest.raises(SetCoverError):
            engine.mask_of({"x1", "nope"})

    def test_uncoverable_vertex_raises(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        engine = BitCoverEngine(h)
        mask = engine.mask_of({1, 2})
        with pytest.raises(SetCoverError):
            engine.greedy_cover(mask)
        with pytest.raises(SetCoverError):
            engine.exact_cover(mask)


class TestPrefixEvaluator:
    @settings(max_examples=40, deadline=None)
    @given(covered_hypergraphs(), st.integers(min_value=0, max_value=2**16))
    def test_fitness_matches_reference(self, h, seed):
        """Interleaved orderings (forcing rewinds of varying depth) all
        score exactly like the frozenset ghw_fitness."""
        rng = random.Random(seed)
        vertices = h.vertex_list()
        evaluator = PrefixGhwEvaluator(h)
        for _ in range(6):
            ordering = list(vertices)
            rng.shuffle(ordering)
            assert evaluator.fitness(ordering) == ghw_fitness(h, ordering)

    @settings(max_examples=30, deadline=None)
    @given(covered_hypergraphs(), st.integers(min_value=0, max_value=2**16))
    def test_population_scores_position_for_position(self, h, seed):
        rng = random.Random(seed)
        vertices = h.vertex_list()
        population = []
        for _ in range(8):
            ordering = list(vertices)
            rng.shuffle(ordering)
            population.append(ordering)
        evaluator = PrefixGhwEvaluator(h)
        scores = evaluator.evaluate_population(population)
        assert scores == [ghw_fitness(h, ind) for ind in population]

    def test_shared_prefixes_are_reused(self, example_hypergraph):
        metrics = Metrics()
        evaluator = PrefixGhwEvaluator(example_hypergraph, metrics=metrics)
        ordering = list(example_hypergraph.vertex_list())
        evaluator.fitness(ordering)
        evaluator.fitness(ordering)  # identical: full prefix reuse
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["ga.prefix.scored"] == 2 * len(ordering)
        assert snapshot["ga.prefix.reused"] == len(ordering)
