"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_gnm_graph,
    random_hypergraph,
)


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def triangle():
    return Graph.from_edges([(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def small_graph():
    """The thesis' Fig. 5.2 running example (6 vertices)."""
    return Graph.from_edges(
        [(1, 2), (1, 3), (2, 3), (2, 6), (3, 4), (4, 5), (5, 6), (3, 6)]
    )


@pytest.fixture
def grid4():
    return grid_graph(4)


@pytest.fixture
def path6():
    return path_graph(6)


@pytest.fixture
def cycle5():
    return cycle_graph(5)


@pytest.fixture
def example_hypergraph():
    """The thesis' example 5 constraint hypergraph (Figs. 2.6–2.9)."""
    return Hypergraph(
        edges={
            "C1": {"x1", "x2", "x3"},
            "C2": {"x1", "x5", "x6"},
            "C3": {"x3", "x4", "x5"},
        }
    )


@pytest.fixture
def adder5():
    return adder_hypergraph(5)


def make_covered_hypergraph(num_vertices: int, num_edges: int, seed: int) -> Hypergraph:
    """A random hypergraph with no isolated vertices (for ghw tests)."""
    h = random_hypergraph(
        num_vertices, num_edges, seed=seed, min_arity=1,
        max_arity=min(3, num_vertices),
    )
    for v in sorted(h.isolated_vertices()):
        h.add_edge({v, (v + 1) % num_vertices} if num_vertices > 1 else {v},
                   name=f"iso{v}")
    return h


def random_graphs(count: int, max_n: int = 9, seed: int = 0):
    """A deterministic batch of random graphs for oracle comparisons."""
    rng = random.Random(seed)
    out = []
    for trial in range(count):
        n = rng.randint(2, max_n)
        m = rng.randint(0, n * (n - 1) // 2)
        out.append(random_gnm_graph(n, m, seed=seed * 1000 + trial))
    return out
