"""Tests for the CSP core, join trees, Acyclic Solving and the builders."""

import pytest

from repro.csp import (
    CSP,
    Constraint,
    CSPError,
    Relation,
    acyclic_solving,
    australia_map_coloring,
    build_join_tree,
    graph_coloring_csp,
    n_queens_csp,
    not_equal_relation,
    random_binary_csp,
    sat_csp,
    solve_acyclic_csp,
    thesis_example_5,
)
from repro.hypergraph.generators import cycle_graph, path_graph


class TestCSPCore:
    def test_constraint_hypergraph(self):
        csp = thesis_example_5()
        h = csp.constraint_hypergraph()
        assert h.num_vertices == 6
        assert h.num_edges == 3
        assert h.edge("C1") == frozenset({"x1", "x2", "x3"})

    def test_is_solution(self):
        csp = thesis_example_5()
        solution = {"x1": "a", "x2": "b", "x3": "c",
                    "x4": "b", "x5": "c", "x6": "b"}
        assert csp.is_solution(solution)
        assert not csp.is_solution({**solution, "x2": "c"})
        assert not csp.is_solution(None)
        assert not csp.is_solution({"x1": "a"})  # incomplete

    def test_domain_membership_checked(self):
        csp = thesis_example_5()
        bad = {"x1": "z", "x2": "b", "x3": "c",
               "x4": "b", "x5": "c", "x6": "b"}
        assert not csp.is_solution(bad)

    def test_empty_domain_rejected(self):
        with pytest.raises(CSPError):
            CSP(domains={"x": []}, constraints=[])

    def test_unknown_scope_variable_rejected(self):
        with pytest.raises(CSPError):
            CSP(
                domains={"x": [1]},
                constraints=[
                    Constraint("c", Relation(("x", "y"), [(1, 1)]))
                ],
            )

    def test_duplicate_constraint_names_rejected(self):
        rel = Relation(("x",), [(1,)])
        with pytest.raises(CSPError):
            CSP(
                domains={"x": [1]},
                constraints=[Constraint("c", rel), Constraint("c", rel)],
            )

    def test_backtracking_satisfiable(self):
        csp = australia_map_coloring()
        solution = csp.solve_backtracking()
        assert csp.is_solution(solution)

    def test_backtracking_unsatisfiable(self):
        csp = graph_coloring_csp(cycle_graph(3), 2)  # odd cycle, 2 colors
        assert csp.solve_backtracking() is None

    def test_all_solutions(self):
        csp = graph_coloring_csp(path_graph(3), 2)
        solutions = csp.all_solutions()
        assert len(solutions) == 2  # alternating colorings
        assert all(csp.is_solution(s) for s in solutions)

    def test_constraint_lookup(self):
        csp = thesis_example_5()
        assert csp.constraint("C2").scope == ("x1", "x5", "x6")
        with pytest.raises(CSPError):
            csp.constraint("nope")


class TestJoinTrees:
    def test_acyclic_csp_has_join_tree(self):
        # A path of constraints is (alpha-)acyclic.
        rel = not_equal_relation("a", "b", (0, 1))
        csp = CSP(
            domains={v: (0, 1) for v in "abcd"},
            constraints=[
                Constraint("c1", rel),
                Constraint("c2", not_equal_relation("b", "c", (0, 1))),
                Constraint("c3", not_equal_relation("c", "d", (0, 1))),
            ],
        )
        tree = build_join_tree(csp)
        assert tree is not None
        assert tree.satisfies_connectedness()

    def test_cyclic_csp_has_no_join_tree(self):
        csp = graph_coloring_csp(cycle_graph(3), 3)
        assert build_join_tree(csp) is None

    def test_acyclic_solving_finds_solution(self):
        csp = graph_coloring_csp(path_graph(5), 2)
        solution = solve_acyclic_csp(csp)
        assert csp.is_solution(solution)

    def test_acyclic_solving_detects_unsat(self):
        # path with 2 colors but a unary constraint forcing a clash
        rel = not_equal_relation("a", "b", (0,))  # empty relation
        csp = CSP(
            domains={"a": (0,), "b": (0,)},
            constraints=[Constraint("c", rel)],
        )
        assert solve_acyclic_csp(csp) is None

    def test_cyclic_raises(self):
        csp = graph_coloring_csp(cycle_graph(4), 3)
        with pytest.raises(CSPError):
            solve_acyclic_csp(csp)

    def test_agreement_with_backtracking(self):
        # star-shaped (acyclic) random CSPs
        for seed in range(8):
            csp = random_binary_csp(5, 3, density=0.0, tightness=0.0,
                                    seed=seed)
            # build an explicitly acyclic chain instead
            constraints = [
                Constraint(
                    f"c{i}", not_equal_relation(f"v{i}", f"v{i+1}", (0, 1, 2))
                )
                for i in range(4)
            ]
            chain = CSP(
                domains={f"v{i}": (0, 1, 2) for i in range(5)},
                constraints=constraints,
            )
            got = solve_acyclic_csp(chain)
            want = chain.solve_backtracking()
            assert (got is None) == (want is None)
            if got is not None:
                assert chain.is_solution(got)


class TestBuilders:
    def test_australia(self):
        csp = australia_map_coloring()
        assert len(csp.variables) == 7
        assert len(csp.constraints) == 9
        known = {"WA": "r", "NT": "g", "SA": "b", "Q": "r",
                 "NSW": "g", "V": "r", "TAS": "g"}
        assert csp.is_solution(known)

    def test_sat_satisfiable(self):
        csp = sat_csp([[-1, 2, 3], [1, -4], [-3, -5]])
        known = {"x1": True, "x2": True, "x3": False,
                 "x4": True, "x5": False}
        assert csp.is_solution(known)

    def test_sat_unsatisfiable(self):
        csp = sat_csp([[1], [-1]])
        assert csp.solve_backtracking() is None

    def test_n_queens_counts(self):
        csp = n_queens_csp(4)
        assert len(csp.variables) == 4
        assert len(csp.constraints) == 6
        solution = csp.solve_backtracking()
        assert csp.is_solution(solution)

    def test_n_queens_3_unsolvable(self):
        assert n_queens_csp(3).solve_backtracking() is None

    def test_random_binary_reproducible(self):
        a = random_binary_csp(6, 3, 0.5, 0.3, seed=1)
        b = random_binary_csp(6, 3, 0.5, 0.3, seed=1)
        assert len(a.constraints) == len(b.constraints)
        for ca, cb in zip(a.constraints, b.constraints):
            assert ca.relation == cb.relation

    def test_random_binary_validation(self):
        with pytest.raises(ValueError):
            random_binary_csp(5, 3, density=2.0, tightness=0.1, seed=0)
        with pytest.raises(ValueError):
            random_binary_csp(5, 3, density=0.5, tightness=1.0, seed=0)

    def test_thesis_example_5_solutions(self):
        csp = thesis_example_5()
        solutions = csp.all_solutions()
        assert solutions  # satisfiable
        assert all(s["x1"] == "a" for s in solutions)  # forced by C2
