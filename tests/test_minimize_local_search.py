"""Tests for TD minimization and the hill-climbing baseline."""

import random

import pytest

from repro.bounds import min_fill_ordering
from repro.decomposition import (
    TreeDecomposition,
    bucket_elimination,
    is_reduced,
    ordering_width,
    remove_subsumed_bags,
)
from repro.genetic import GAParameters, ga_treewidth, hill_climb_ordering
from repro.hypergraph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    queen_graph,
    random_gnm_graph,
)
from repro.search import brute_force_treewidth


class TestRemoveSubsumedBags:
    @pytest.mark.parametrize("seed", range(8))
    def test_preserves_validity_and_width(self, seed):
        g = random_gnm_graph(10, 18, seed=seed + 15000)
        td = bucket_elimination(g, min_fill_ordering(g))
        reduced = remove_subsumed_bags(td)
        assert reduced.is_valid(g)
        assert reduced.width == td.width
        assert is_reduced(reduced)
        assert reduced.num_nodes <= td.num_nodes

    def test_path_collapses_to_minimum(self):
        g = path_graph(6)
        td = bucket_elimination(g, min_fill_ordering(g))
        reduced = remove_subsumed_bags(td)
        # P6 has 5 edges -> 5 distinct width-1 bags
        assert reduced.num_nodes == 5

    def test_input_untouched(self):
        g = cycle_graph(6)
        td = bucket_elimination(g, min_fill_ordering(g))
        nodes_before = td.num_nodes
        remove_subsumed_bags(td)
        assert td.num_nodes == nodes_before

    def test_single_node_unchanged(self):
        td = TreeDecomposition()
        td.add_node("only", {1, 2})
        reduced = remove_subsumed_bags(td)
        assert reduced.num_nodes == 1

    def test_equal_bags_merge(self):
        td = TreeDecomposition()
        td.add_node("a", {1, 2})
        td.add_node("b", {1, 2})
        td.add_node("c", {2, 3})
        td.add_tree_edge("a", "b")
        td.add_tree_edge("b", "c")
        reduced = remove_subsumed_bags(td)
        assert reduced.num_nodes == 2


class TestHillClimb:
    def test_reaches_optimum_on_easy_graphs(self):
        for g, opt in ((cycle_graph(7), 2), (grid_graph(3), 3)):
            result = hill_climb_ordering(
                g, rng=random.Random(1), max_rounds=300
            )
            assert result.best_fitness == opt

    def test_plateau_behavior_on_paths(self):
        """Strict-improvement climbing stalls on width plateaus — the
        path's width-1 orderings are unreachable from width-2 local
        optima by single insertions.  This is the hill climber's
        authentic weakness (and why the thesis uses populations)."""
        result = hill_climb_ordering(
            path_graph(8), rng=random.Random(1), max_rounds=300
        )
        assert result.best_fitness in (1, 2)

    def test_result_is_achievable(self):
        g = queen_graph(5)
        result = hill_climb_ordering(g, rng=random.Random(2), max_rounds=100)
        assert ordering_width(g, result.best_individual) == \
            result.best_fitness

    @pytest.mark.parametrize("seed", range(5))
    def test_upper_bound_of_treewidth(self, seed):
        g = random_gnm_graph(8, 14, seed=seed + 15100)
        result = hill_climb_ordering(g, rng=random.Random(seed))
        assert result.best_fitness >= brute_force_treewidth(g)

    def test_history_monotone(self):
        g = queen_graph(5)
        result = hill_climb_ordering(g, rng=random.Random(3), max_rounds=50)
        assert all(
            a >= b for a, b in zip(result.history, result.history[1:])
        )

    def test_custom_start(self):
        g = grid_graph(3)
        start = min_fill_ordering(g)
        result = hill_climb_ordering(g, start=start, rng=random.Random(0))
        assert result.best_fitness <= ordering_width(g, start)

    def test_bad_start_rejected(self):
        g = grid_graph(3)
        with pytest.raises(ValueError):
            hill_climb_ordering(g, start=[(0, 0)], rng=random.Random(0))

    def test_empty_graph(self):
        from repro.hypergraph import Graph

        result = hill_climb_ordering(Graph())
        assert result.best_fitness == 0

    def test_time_budget_respected(self):
        g = queen_graph(6)
        result = hill_climb_ordering(
            g, rng=random.Random(0), max_rounds=10**6, max_seconds=0.5
        )
        assert result.iterations < 10**6

    def test_comparable_to_tiny_ga(self):
        """The baseline claim: a budgeted GA beats or ties the hill
        climber's local optimum on queen5_5 (both find 18 here)."""
        g = queen_graph(5)
        climb = hill_climb_ordering(g, rng=random.Random(4), max_rounds=200)
        ga = ga_treewidth(
            g, GAParameters(population_size=30, generations=40),
            rng=random.Random(4),
        )
        assert ga.best_fitness <= climb.best_fitness
