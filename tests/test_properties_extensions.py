"""Property-based tests (hypothesis) for the extension modules: nice
tree decompositions, DP applications, hypertree decompositions,
enumeration, MCS and the transposition-table A*."""

import random

from hypothesis import given, settings, strategies as st

from repro.apps import (
    brute_force_dominating_set,
    brute_force_mwis,
    count_colorings,
    max_weight_independent_set,
    min_weight_dominating_set,
)
from repro.bounds import (
    is_chordal,
    is_perfect_elimination_ordering,
    mcs_ordering,
    min_fill_ordering,
)
from repro.csp import (
    CSP,
    Constraint,
    build_join_tree,
    count_solutions,
    enumerate_solutions,
    not_equal_relation,
)
from repro.decomposition import bucket_elimination
from repro.decomposition.nice import NiceTreeDecomposition
from repro.hypergraph import Graph
from repro.search import astar_treewidth, brute_force_treewidth


@st.composite
def graphs(draw, max_vertices=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible))
    ) if possible else []
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    return g


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_nice_conversion_preserves_width_and_validity(g):
    td = bucket_elimination(g, min_fill_ordering(g))
    nice = NiceTreeDecomposition.from_tree_decomposition(td, g)
    assert nice.violations() == []
    assert nice.width == td.width
    assert nice.to_tree_decomposition().is_valid(g)


@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=7))
def test_mwis_matches_brute_force(g):
    value, solution = max_weight_independent_set(g)
    assert value == brute_force_mwis(g)
    assert all(
        not g.has_edge(u, v) for u in solution for v in solution if u != v
    )


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=7))
def test_dominating_set_matches_brute_force(g):
    value, solution = min_weight_dominating_set(g)
    assert value == brute_force_dominating_set(g)
    for v in g.vertex_list():
        assert v in solution or (g.neighbors(v) & solution)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=6), st.integers(min_value=1, max_value=3))
def test_coloring_count_nonnegative_and_monotone(g, k):
    few = count_colorings(g, k)
    more = count_colorings(g, k + 1)
    assert 0 <= few <= more  # more colors never reduce the count


@settings(max_examples=30, deadline=None)
@given(graphs())
def test_mcs_perfect_iff_fill_free_triangulation(g):
    ordering = mcs_ordering(g)
    if is_perfect_elimination_ordering(g, ordering):
        assert is_chordal(g)
    # and min-fill on a chordal graph is also fill-free
    if is_chordal(g):
        assert is_perfect_elimination_ordering(g, min_fill_ordering(g))


@settings(max_examples=20, deadline=None)
@given(graphs(max_vertices=7))
def test_memoized_astar_agrees(g):
    plain = astar_treewidth(g)
    memo = astar_treewidth(g, memoize=True)
    assert plain.width == memo.width == brute_force_treewidth(g)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=3),
)
def test_chain_enumeration_complete(n, k):
    domain = tuple(range(k))
    constraints = [
        Constraint(f"c{i}", not_equal_relation(f"v{i}", f"v{i+1}", domain))
        for i in range(n - 1)
    ]
    csp = CSP(
        domains={f"v{i}": domain for i in range(n)},
        constraints=constraints,
    )
    tree = build_join_tree(csp)
    assert tree is not None
    enumerated = list(enumerate_solutions(tree))
    assert len(enumerated) == count_solutions(tree)
    assert len(enumerated) == k * (k - 1) ** (n - 1)
    for solution in enumerated:
        assert csp.is_solution(solution)
