"""Tests for A*-tw and BB-tw — exactness, anytime bounds, budgets."""

import pytest

from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    myciel_graph,
    path_graph,
    queen_graph,
    random_gnm_graph,
)
from repro.search import (
    SearchBudget,
    astar_treewidth,
    branch_and_bound_treewidth,
    brute_force_treewidth,
)
from repro.decomposition import ordering_width


SOLVERS = [astar_treewidth, branch_and_bound_treewidth]


@pytest.mark.parametrize("solver", SOLVERS)
class TestExactness:
    def test_trivial_graphs(self, solver):
        assert solver(Graph()).width == 0
        assert solver(Graph(vertices=[1])).width == 0

    def test_path(self, solver, path6):
        result = solver(path6)
        assert result.exact and result.width == 1

    def test_cycle(self, solver, cycle5):
        result = solver(cycle5)
        assert result.exact and result.width == 2

    def test_complete(self, solver):
        result = solver(complete_graph(7))
        assert result.exact and result.width == 6

    def test_grid4(self, solver, grid4):
        result = solver(grid4)
        assert result.exact and result.width == 4

    def test_grid5(self, solver):
        result = solver(grid_graph(5))
        assert result.exact and result.width == 5

    def test_myciel3(self, solver):
        result = solver(myciel_graph(3))
        assert result.exact and result.width == 5

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_match_brute_force(self, solver, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 9)
        m = rng.randint(0, n * (n - 1) // 2)
        g = random_gnm_graph(n, m, seed=seed + 300)
        result = solver(g)
        assert result.exact
        assert result.width == brute_force_treewidth(g)

    def test_witness_ordering_achieves_width(self, solver, grid4):
        result = solver(grid4)
        assert ordering_width(grid4, result.ordering) <= result.width

    def test_hypergraph_input(self, solver, example_hypergraph):
        result = solver(example_hypergraph)
        assert result.exact
        primal = example_hypergraph.primal_graph()
        assert result.width == brute_force_treewidth(primal)

    def test_disconnected(self, solver):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3), (10, 11)])
        result = solver(g)
        assert result.exact and result.width == 2


@pytest.mark.parametrize("solver", SOLVERS)
class TestAblationFlags:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_without_reductions(self, solver, seed):
        g = random_gnm_graph(7, 12, seed=seed + 400)
        expected = brute_force_treewidth(g)
        result = solver(g, use_reductions=False)
        assert result.exact and result.width == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_without_pr2(self, solver, seed):
        g = random_gnm_graph(7, 12, seed=seed + 500)
        expected = brute_force_treewidth(g)
        result = solver(g, use_pr2=False)
        assert result.exact and result.width == expected

    def test_child_lower_bound_variants(self, solver, grid4):
        for name in ("mmw", "both", "none"):
            result = solver(grid4, child_lower_bound=name)
            assert result.exact and result.width == 4

    def test_unknown_lower_bound_rejected(self, solver, grid4):
        with pytest.raises(ValueError):
            solver(grid4, child_lower_bound="bogus")


class TestBudgets:
    def test_astar_budget_gives_bounds(self):
        g = queen_graph(6)  # treewidth 25, too hard for 50 nodes
        result = astar_treewidth(g, budget=SearchBudget(max_nodes=50))
        assert result.lower_bound <= 25 <= result.upper_bound
        assert result.stats.budget_exhausted or result.exact

    def test_bb_budget_gives_bounds(self):
        g = queen_graph(6)
        result = branch_and_bound_treewidth(
            g, budget=SearchBudget(max_nodes=50)
        )
        assert result.lower_bound <= 25 <= result.upper_bound

    def test_astar_anytime_lower_bound_improves(self):
        """§5.3: interrupted A* reports a nontrivial lower bound."""
        g = queen_graph(6)
        small = astar_treewidth(g, budget=SearchBudget(max_nodes=5))
        large = astar_treewidth(g, budget=SearchBudget(max_nodes=400))
        assert large.lower_bound >= small.lower_bound

    def test_budget_zero_nodes_still_returns(self):
        g = queen_graph(5)
        result = astar_treewidth(g, budget=SearchBudget(max_nodes=0))
        assert result.upper_bound >= result.lower_bound

    def test_stats_populated(self, grid4):
        result = astar_treewidth(grid_graph(5))
        assert result.stats.nodes_expanded > 0
        assert result.stats.elapsed_seconds >= 0


class TestMemoization:
    """The transposition-table extension to A*-tw."""

    @pytest.mark.parametrize("seed", range(8))
    def test_memoized_matches_brute_force(self, seed):
        g = random_gnm_graph(8, 14, seed=seed + 600)
        result = astar_treewidth(g, memoize=True)
        assert result.exact
        assert result.width == brute_force_treewidth(g)

    def test_memoization_never_expands_more(self):
        g = queen_graph(5)
        base = astar_treewidth(g)
        memo = astar_treewidth(g, memoize=True)
        assert memo.width == base.width == 18
        assert memo.stats.nodes_expanded <= base.stats.nodes_expanded


class TestKnownInstances:
    def test_queen5_exact_18(self):
        result = astar_treewidth(queen_graph(5))
        assert result.exact and result.width == 18

    def test_grid_treewidth_equals_n(self):
        for n in (2, 3, 4, 5):
            result = astar_treewidth(grid_graph(n))
            assert result.exact and result.width == n, n
