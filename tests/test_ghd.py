"""Unit tests for GeneralizedHypertreeDecomposition."""

import pytest

from repro.decomposition import (
    DecompositionError,
    GeneralizedHypertreeDecomposition,
)
from repro.hypergraph import Hypergraph


def example_ghd():
    """Width-2 GHD of the thesis' example 5 hypergraph (Fig. 2.7)."""
    ghd = GeneralizedHypertreeDecomposition()
    ghd.add_node("p1", bag={"x1", "x3", "x5"}, cover={"C1", "C3"})
    ghd.add_node("p2", bag={"x1", "x2", "x3"}, cover={"C1"})
    ghd.add_node("p3", bag={"x3", "x4", "x5"}, cover={"C3"})
    ghd.add_node("p4", bag={"x1", "x5", "x6"}, cover={"C2"})
    ghd.add_tree_edge("p1", "p2")
    ghd.add_tree_edge("p1", "p3")
    ghd.add_tree_edge("p1", "p4")
    return ghd


class TestStructure:
    def test_ghw_width(self):
        assert example_ghd().ghw_width == 2

    def test_cover_access(self):
        ghd = example_ghd()
        assert ghd.cover("p1") == frozenset({"C1", "C3"})
        with pytest.raises(DecompositionError):
            ghd.cover("zzz")

    def test_set_cover(self):
        ghd = example_ghd()
        ghd.set_cover("p2", {"C1", "C2"})
        assert ghd.ghw_width == 2
        with pytest.raises(DecompositionError):
            ghd.set_cover("zzz", set())

    def test_remove_node_clears_cover(self):
        ghd = example_ghd()
        ghd.remove_node("p4")
        assert "p4" not in ghd.covers

    def test_copy(self):
        ghd = example_ghd()
        clone = ghd.copy()
        clone.set_cover("p1", {"C1"})
        assert ghd.cover("p1") == frozenset({"C1", "C3"})


class TestValidity:
    def test_valid_example(self, example_hypergraph):
        assert example_ghd().is_valid(example_hypergraph)

    def test_requires_hypergraph(self, triangle):
        with pytest.raises(TypeError):
            example_ghd().violations(triangle)

    def test_uncovered_bag_detected(self, example_hypergraph):
        ghd = example_ghd()
        ghd.set_cover("p4", {"C1"})  # C1 does not contain x5, x6
        problems = ghd.violations(example_hypergraph)
        assert any("not covered" in p for p in problems)

    def test_unknown_lambda_edge_detected(self, example_hypergraph):
        ghd = example_ghd()
        ghd.set_cover("p2", {"nope"})
        problems = ghd.violations(example_hypergraph)
        assert any("unknown hyperedges" in p for p in problems)

    def test_td_conditions_still_checked(self, example_hypergraph):
        ghd = example_ghd()
        ghd.remove_node("p4")  # C2 no longer contained in any bag
        problems = ghd.violations(example_hypergraph)
        assert any("C2" in p for p in problems)


class TestCompletion:
    def test_example_is_already_complete(self, example_hypergraph):
        assert example_ghd().is_complete(example_hypergraph)

    def test_completion_adds_witnesses(self, example_hypergraph):
        ghd = GeneralizedHypertreeDecomposition()
        # A single fat node covering everything with all three edges.
        ghd.add_node(
            "root",
            bag={"x1", "x2", "x3", "x4", "x5", "x6"},
            cover={"C1", "C2", "C3"},
        )
        assert ghd.is_valid(example_hypergraph)
        assert ghd.is_complete(example_hypergraph)  # λ lists all edges

        # Drop C3 from λ but keep coverage via C1/C2... C3's vertices are
        # x3, x4, x5 — not covered by C1 ∪ C2 (x4 missing), so use a
        # different construction: bag contains C3 but λ doesn't list it.
        ghd2 = GeneralizedHypertreeDecomposition()
        ghd2.add_node("a", bag={"x1", "x2", "x3"}, cover={"C1"})
        ghd2.add_node("b", bag={"x3", "x4", "x5"}, cover={"C3"})
        ghd2.add_node("c", bag={"x1", "x5", "x6"}, cover={"C2"})
        ghd2.add_node("bridge", bag={"x1", "x3", "x5"}, cover={"C1", "C3"})
        ghd2.add_tree_edge("bridge", "a")
        ghd2.add_tree_edge("bridge", "b")
        ghd2.add_tree_edge("bridge", "c")
        assert ghd2.is_complete(example_hypergraph)

    def test_completion_of_incomplete(self, example_hypergraph):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node("a", bag={"x1", "x2", "x3"}, cover={"C1"})
        ghd.add_node(
            "rest", bag={"x1", "x3", "x4", "x5", "x6"}, cover={"C2", "C3"}
        )
        ghd.add_tree_edge("a", "rest")
        assert ghd.is_valid(example_hypergraph)
        # C2 ⊆ bag("rest") and C2 ∈ λ("rest") — but is C3 witnessed?
        # C3 = {x3,x4,x5} ⊆ bag("rest") and C3 ∈ λ("rest"): complete.
        assert ghd.is_complete(example_hypergraph)

        ghd.set_cover("rest", {"C2", "C3"})
        # Break completeness by splitting λ so C3 has no witness node.
        ghd2 = GeneralizedHypertreeDecomposition()
        ghd2.add_node("a", bag={"x1", "x2", "x3"}, cover={"C1"})
        ghd2.add_node("b", bag={"x3", "x4"}, cover={"C3"})
        ghd2.add_node("c", bag={"x1", "x3", "x4", "x5", "x6"},
                      cover={"C2", "C3"})
        ghd2.add_tree_edge("a", "c")
        ghd2.add_tree_edge("b", "c")
        assert ghd2.is_valid(example_hypergraph)
        completed = ghd2.completed(example_hypergraph)
        assert completed.is_complete(example_hypergraph)
        assert completed.ghw_width == ghd2.ghw_width
        assert completed.is_valid(example_hypergraph)

    def test_completion_width_never_increases(self, example_hypergraph):
        ghd = GeneralizedHypertreeDecomposition()
        ghd.add_node(
            "root",
            bag={"x1", "x2", "x3", "x4", "x5", "x6"},
            cover={"C1", "C2", "C3"},
        )
        completed = ghd.completed(example_hypergraph)
        assert completed.ghw_width <= ghd.ghw_width
