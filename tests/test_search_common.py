"""Tests for the shared search infrastructure (budgets, replayer)."""

import time

import pytest

from repro.hypergraph.generators import grid_graph, random_gnm_graph
from repro.search import (
    BudgetExceeded,
    GraphReplayer,
    SearchBudget,
    astar_treewidth,
    branch_and_bound_treewidth,
)
from repro.search.common import BoundHooks, SearchResult, SearchStats


class TestBudget:
    def test_node_budget_raises(self):
        clock = SearchBudget(max_nodes=3).start()
        clock.tick()
        clock.tick()
        clock.tick()
        with pytest.raises(BudgetExceeded):
            clock.tick()

    def test_unlimited_budget(self):
        clock = SearchBudget().start()
        for _ in range(1000):
            clock.tick()
        assert clock.nodes == 1000

    def test_time_budget(self):
        clock = SearchBudget(max_seconds=0.05).start()
        time.sleep(0.08)
        with pytest.raises(BudgetExceeded):
            for _ in range(128):  # time is sampled every 64 ticks
                clock.tick()

    def test_elapsed(self):
        clock = SearchBudget().start()
        assert clock.elapsed >= 0


class TestSearchResult:
    def test_width_is_upper_bound(self):
        result = SearchResult(5, 3, [1, 2], False, SearchStats())
        assert result.width == 5
        assert not result.exact


class TestGraphReplayer:
    def test_move_forward_and_back(self):
        g = grid_graph(3)
        replayer = GraphReplayer(g)
        full = [(r, c) for r in range(3) for c in range(3)]
        state_a = replayer.move_to(full[:4])
        assert len(state_a) == 5
        state_b = replayer.move_to(full[:1])
        assert len(state_b) == 8
        state_c = replayer.move_to([])
        assert state_c == g

    def test_divergent_orderings(self):
        g = random_gnm_graph(8, 14, seed=1)
        replayer = GraphReplayer(g)
        vertices = g.vertex_list()
        a = vertices[:3]
        b = [vertices[0], vertices[4], vertices[5]]
        ga = replayer.move_to(a).copy()
        gb = replayer.move_to(b).copy()
        # reference: eliminate from scratch
        ref_a = g.copy()
        for v in a:
            ref_a.eliminate(v)
        ref_b = g.copy()
        for v in b:
            ref_b.eliminate(v)
        assert ga == ref_a
        assert gb == ref_b

    def test_original_graph_untouched(self):
        g = grid_graph(3)
        reference = g.copy()
        replayer = GraphReplayer(g)
        replayer.move_to(g.vertex_list()[:5])
        assert g == reference

    def test_many_random_jumps(self):
        import random

        g = random_gnm_graph(10, 20, seed=5)
        vertices = g.vertex_list()
        rng = random.Random(0)
        replayer = GraphReplayer(g)
        for _ in range(25):
            k = rng.randint(0, 8)
            ordering = rng.sample(vertices, k)
            got = replayer.move_to(ordering)
            ref = g.copy()
            for v in ordering:
                ref.eliminate(v)
            assert got == ref


class TestStatsConsistency:
    """Every search exit path must report the full SearchStats — no field
    may be left at its default on some paths but not others."""

    def test_finish_stamps_elapsed_and_published(self):
        published = []
        hooks = BoundHooks(publish_upper=published.append)
        clock = SearchBudget(hooks=hooks).start()
        clock.publish_upper(9)
        clock.publish_upper(7)
        stats = clock.finish(SearchStats(nodes_expanded=3))
        assert stats.bounds_published == 2
        assert stats.elapsed_seconds > 0
        assert published == [9, 7]

    def test_astar_reports_all_fields(self):
        from repro.instances import get_instance

        result = astar_treewidth(get_instance("myciel4").build())
        s = result.stats
        assert s.nodes_expanded > 0
        assert s.max_frontier > 0
        assert s.elapsed_seconds > 0
        assert s.reductions_forced > 0  # myciel4 hits forced reductions
        assert not s.budget_exhausted

    def test_bb_reports_peak_depth(self):
        from repro.instances import get_instance

        result = branch_and_bound_treewidth(get_instance("myciel4").build())
        s = result.stats
        assert s.nodes_expanded > 0
        # max_frontier is the peak recursion depth for the DFS searches;
        # BB must descend at least one level to do any work.
        assert s.max_frontier > 0
        assert s.elapsed_seconds > 0

    def test_budget_exhausted_path_reports_stats(self):
        from repro.instances import get_instance

        result = astar_treewidth(
            get_instance("myciel4").build(), budget=SearchBudget(max_nodes=50)
        )
        s = result.stats
        assert s.budget_exhausted
        assert s.elapsed_seconds > 0
        assert s.max_frontier > 0
        assert not result.exact
        assert "budget-exhausted" in result.summary()

    def test_summary_surfaces_every_counter(self):
        stats = SearchStats(
            nodes_expanded=11,
            max_frontier=22,
            elapsed_seconds=0.5,
            budget_exhausted=False,
            bounds_adopted=33,
            bounds_published=44,
            reductions_forced=55,
        )
        line = SearchResult(6, 4, [1], False, stats).summary("tw")
        assert "tw in [4, 6]" in line
        for token in (
            "nodes=11", "frontier=22", "reductions=55",
            "published=44", "adopted=33", "elapsed=0.500s",
        ):
            assert token in line
        exact_line = SearchResult(6, 6, [1], True, stats).summary("tw")
        assert exact_line.startswith("tw = 6")

    def test_as_dict_covers_every_field(self):
        import dataclasses

        stats = SearchStats()
        assert set(stats.as_dict()) == {
            f.name for f in dataclasses.fields(SearchStats)
        }
