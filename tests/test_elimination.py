"""Unit tests for bucket elimination, vertex elimination and the
ordering-width evaluators."""

import pytest

from repro.decomposition import (
    OrderingError,
    bucket_elimination,
    check_ordering,
    elimination_bags,
    ghd_from_ordering,
    ghw_ordering_width,
    ordering_width,
    vertex_elimination,
)
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_gnm_graph,
)
from repro.setcover import exact_set_cover


class TestOrderingChecks:
    def test_duplicate_rejected(self, triangle):
        with pytest.raises(OrderingError):
            check_ordering(triangle, [1, 1, 2])

    def test_missing_rejected(self, triangle):
        with pytest.raises(OrderingError):
            check_ordering(triangle, [1, 2])

    def test_extra_rejected(self, triangle):
        with pytest.raises(OrderingError):
            check_ordering(triangle, [1, 2, 3, 4])


class TestOrderingWidth:
    def test_path_width_one(self, path6):
        assert ordering_width(path6, [0, 1, 2, 3, 4, 5]) == 1
        assert ordering_width(path6, [0, 5, 1, 4, 2, 3]) == 1

    def test_path_bad_ordering(self, path6):
        # Eliminating the middle first creates larger bags but a path's
        # width never exceeds... eliminating 2 first gives bag {1,2,3}.
        assert ordering_width(path6, [2, 0, 1, 3, 4, 5]) == 2

    def test_cycle_width_two(self, cycle5):
        for ordering in ([0, 1, 2, 3, 4], [3, 0, 4, 1, 2]):
            assert ordering_width(cycle5, ordering) == 2

    def test_complete_graph(self):
        g = complete_graph(5)
        assert ordering_width(g, [0, 1, 2, 3, 4]) == 4

    def test_empty_and_singleton(self):
        assert ordering_width(Graph(), []) == 0
        assert ordering_width(Graph(vertices=[7]), [7]) == 0

    def test_thesis_fig_2_11_ordering(self):
        """Fig. 2.11: eliminating x1..x6 of the example hypergraph in
        order x1 first (thesis σ reversed) gives width 3 bags."""
        h = Hypergraph(
            edges={
                "h1": {"x1", "x2"},
                "h2": {"x1", "x3"},
                "h3": {"x2", "x4"},
                "h4": {"x3", "x5"},
                "h5": {"x2", "x3", "x6"},
                "h6": {"x4", "x5", "x6"},
            }
        )
        ordering = ["x1", "x2", "x3", "x4", "x5", "x6"]
        bags = elimination_bags(h, ordering)
        assert bags["x1"] == frozenset({"x1", "x2", "x3"})
        # eliminating x1 connects x2-x3; bag of x2 holds later nbrs
        assert "x3" in bags["x2"]

    def test_width_matches_bags(self, grid4):
        ordering = grid4.vertex_list()
        bags = elimination_bags(grid4, ordering)
        expected = max(len(bag) for bag in bags.values()) - 1
        assert ordering_width(grid4, ordering) == expected


class TestBucketVsVertexElimination:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_bags_on_random_graphs(self, seed):
        import random

        g = random_gnm_graph(10, 18, seed=seed)
        ordering = g.vertex_list()
        random.Random(seed).shuffle(ordering)
        td_bucket = bucket_elimination(g, ordering)
        td_vertex = vertex_elimination(g, ordering)
        assert td_bucket.bags == td_vertex.bags
        assert sorted(map(sorted, td_bucket.tree_edges())) == sorted(
            map(sorted, td_vertex.tree_edges())
        )

    def test_bags_match_elimination_bags(self, grid4):
        ordering = grid4.vertex_list()
        bags = elimination_bags(grid4, ordering)
        td = bucket_elimination(grid4, ordering)
        assert td.bags == bags


class TestBucketElimination:
    def test_produces_valid_td(self, small_graph):
        ordering = small_graph.vertex_list()
        td = bucket_elimination(small_graph, ordering)
        assert td.is_valid(small_graph)
        assert td.width == ordering_width(small_graph, ordering)

    def test_hypergraph_input(self, example_hypergraph):
        ordering = example_hypergraph.vertex_list()
        td = bucket_elimination(example_hypergraph, ordering)
        assert td.is_valid(example_hypergraph)

    def test_disconnected_graph_still_a_tree(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        g.add_vertex(5)
        td = bucket_elimination(g, [1, 2, 3, 4, 5])
        assert td.is_tree()
        assert td.is_valid(g)

    def test_every_vertex_has_a_bucket(self, grid4):
        td = bucket_elimination(grid4, grid4.vertex_list())
        assert set(td.nodes) == set(grid4.vertex_list())


class TestGhwWidth:
    def test_example_ghd_width_two(self, example_hypergraph):
        # Some ordering of the example reaches ghw = 2 (Fig. 2.7).
        import itertools

        best = min(
            ghw_ordering_width(
                example_hypergraph, list(p),
                cover_function=exact_set_cover,
            )
            for p in itertools.permutations(example_hypergraph.vertex_list())
        )
        assert best == 2

    def test_greedy_at_least_exact(self, adder5):
        ordering = adder5.vertex_list()
        greedy = ghw_ordering_width(adder5, ordering)
        exact = ghw_ordering_width(
            adder5, ordering, cover_function=exact_set_cover
        )
        assert exact <= greedy

    def test_ghd_from_ordering_valid(self, adder5):
        ordering = adder5.vertex_list()
        ghd = ghd_from_ordering(adder5, ordering)
        assert ghd.is_valid(adder5)
        assert ghd.ghw_width == ghw_ordering_width(adder5, ordering)

    def test_ghd_from_ordering_exact_cover(self, example_hypergraph):
        ordering = example_hypergraph.vertex_list()
        ghd = ghd_from_ordering(
            example_hypergraph, ordering, cover_function=exact_set_cover
        )
        assert ghd.is_valid(example_hypergraph)


class TestStructuralWidthFacts:
    """Known widths of classic families via good orderings."""

    def test_tree_width_one(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        ordering = [3, 4, 5, 2, 1, 0]
        assert ordering_width(g, ordering) == 1

    def test_grid_row_ordering(self):
        g = grid_graph(4)
        row_major = [(r, c) for r in range(4) for c in range(4)]
        assert ordering_width(g, row_major) == 4

    def test_clique_any_ordering(self):
        g = complete_graph(6)
        assert ordering_width(g, list(range(6))) == 5
        assert ordering_width(g, [3, 1, 4, 0, 5, 2]) == 5
