"""Unit tests for repro.hypergraph.graph.Graph."""

import pytest

from repro.hypergraph import Graph, GraphError


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(2, 1)

    def test_complete(self):
        g = Graph.complete(range(5))
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g)

    def test_duplicate_edges_are_idempotent(self):
        g = Graph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_vertices_without_edges(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_arbitrary_hashable_vertices(self):
        g = Graph.from_edges([("a", (1, 2)), ((1, 2), frozenset([3]))])
        assert g.has_edge("a", (1, 2))
        assert g.degree((1, 2)) == 2


class TestQueries:
    def test_neighbors_are_copies(self, triangle):
        nbrs = triangle.neighbors(1)
        nbrs.add(99)
        assert 99 not in triangle.neighbors(1)

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(42)
        with pytest.raises(GraphError):
            triangle.degree(42)

    def test_edges_iterates_each_once(self, grid4):
        edges = list(grid4.edges())
        assert len(edges) == grid4.num_edges
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == len(edges)

    def test_len_and_contains(self, triangle):
        assert len(triangle) == 3
        assert 1 in triangle
        assert 9 not in triangle

    def test_vertex_list_insertion_order(self):
        g = Graph(vertices=[5, 3, 9])
        assert g.vertex_list() == [5, 3, 9]


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge(1, 2)
        assert not triangle.has_edge(1, 2)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge(1, 99)

    def test_remove_vertex(self, small_graph):
        before = small_graph.num_edges
        degree = small_graph.degree(3)
        small_graph.remove_vertex(3)
        assert 3 not in small_graph
        assert small_graph.num_edges == before - degree

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(1, 4)
        assert 4 not in triangle

    def test_subgraph(self, small_graph):
        sub = small_graph.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # the triangle 1-2-3

    def test_subgraph_unknown_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph([1, 99])


class TestElimination:
    def test_eliminate_creates_clique(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        record = g.eliminate(0)
        assert record.neighbors == frozenset({1, 2, 3})
        assert len(record.fill_edges) == 3
        assert g.is_clique([1, 2, 3])
        assert 0 not in g

    def test_eliminate_simplicial_adds_no_fill(self, triangle):
        record = triangle.eliminate(1)
        assert record.fill_edges == ()

    def test_restore_roundtrip(self, small_graph):
        reference = small_graph.copy()
        order = [3, 6, 1, 2]
        for v in order:
            small_graph.eliminate(v)
        for _ in order:
            small_graph.restore()
        assert small_graph == reference
        assert small_graph.num_edges == reference.num_edges

    def test_restore_empty_stack_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.restore()

    def test_elimination_depth(self, small_graph):
        assert small_graph.elimination_depth == 0
        small_graph.eliminate(1)
        small_graph.eliminate(2)
        assert small_graph.elimination_depth == 2
        small_graph.restore()
        assert small_graph.elimination_depth == 1

    def test_fill_in_count_matches_eliminate(self, small_graph):
        for v in list(small_graph.vertex_list()):
            predicted = small_graph.fill_in_count(v)
            record = small_graph.eliminate(v)
            assert len(record.fill_edges) == predicted
            small_graph.restore()

    def test_interleaved_eliminate_restore(self, grid4):
        reference = grid4.copy()
        grid4.eliminate((0, 0))
        grid4.eliminate((1, 1))
        grid4.restore()
        grid4.eliminate((3, 3))
        grid4.restore()
        grid4.restore()
        assert grid4 == reference


class TestContraction:
    def test_contract_edge_merges_neighborhoods(self):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 4)])
        g.contract_edge(1, 2)
        assert 2 not in g
        assert g.has_edge(1, 3)
        assert g.has_edge(1, 4)

    def test_contract_non_edge_raises(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        with pytest.raises(GraphError):
            g.contract_edge(1, 3)

    def test_contract_no_self_loop(self, triangle):
        triangle.contract_edge(1, 2)
        assert not triangle.has_edge(1, 1) if 1 in triangle else True
        assert triangle.num_vertices == 2
        assert triangle.has_edge(1, 3)


class TestPredicates:
    def test_is_clique(self, triangle):
        assert triangle.is_clique([1, 2, 3])
        assert triangle.is_clique([1, 2])
        assert triangle.is_clique([])

    def test_is_simplicial(self, small_graph):
        # vertex 1 has neighbors {2, 3} which are adjacent
        assert small_graph.is_simplicial(1)
        # vertex 3 has neighbors {1, 2, 4, 6}; 4-6 not adjacent
        assert not small_graph.is_simplicial(3)

    def test_almost_simplicial_witness(self):
        # star center: neighbors pairwise non-adjacent -> not almost simpl.
        star = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert star.almost_simplicial_witness(0) is None
        # one missing edge in the neighborhood -> witness exists
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        witness = g.almost_simplicial_witness(0)
        assert witness == 3

    def test_connected_components(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        g.add_vertex(5)
        comps = sorted(g.connected_components(), key=lambda c: min(c))
        assert comps == [{1, 2}, {3, 4}, {5}]

    def test_min_degree_vertex(self, small_graph):
        v = small_graph.min_degree_vertex()
        d = small_graph.degree(v)
        assert all(small_graph.degree(u) >= d for u in small_graph)

    def test_min_degree_empty_raises(self):
        with pytest.raises(GraphError):
            Graph().min_degree_vertex()


class TestEquality:
    def test_equal_graphs(self):
        a = Graph.from_edges([(1, 2), (2, 3)])
        b = Graph.from_edges([(2, 3), (1, 2)])
        assert a == b

    def test_unequal_graphs(self):
        a = Graph.from_edges([(1, 2)])
        b = Graph.from_edges([(1, 3)])
        assert a != b

    def test_not_equal_to_other_types(self, triangle):
        assert triangle != "graph"
