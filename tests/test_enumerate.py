"""Tests for solution counting and enumeration (Yannakakis full
reducer)."""

import pytest

from repro.csp import (
    CSP,
    Constraint,
    Relation,
    australia_map_coloring,
    build_join_tree,
    count_csp_solutions,
    count_solutions,
    enumerate_solutions,
    full_reduce,
    graph_coloring_csp,
    not_equal_relation,
    random_binary_csp,
    sat_csp,
    thesis_example_5,
)
from repro.hypergraph.generators import cycle_graph, grid_graph, path_graph


def chain_csp(n: int, colors: int = 2) -> CSP:
    domain = tuple(range(colors))
    constraints = [
        Constraint(f"c{i}", not_equal_relation(f"v{i}", f"v{i+1}", domain))
        for i in range(n - 1)
    ]
    return CSP(
        domains={f"v{i}": domain for i in range(n)},
        constraints=constraints,
    )


class TestFullReduce:
    def test_consistent_instance(self):
        csp = chain_csp(4, 3)
        tree = build_join_tree(csp)
        reduced = full_reduce(tree)
        assert reduced is not None
        # every surviving tuple participates in a solution: globally
        # consistent means non-empty everywhere
        assert all(not r.is_empty for r in reduced.relations.values())

    def test_inconsistent_instance_detected(self):
        empty = Relation(("a", "b"), [])
        csp = CSP(
            domains={"a": (0,), "b": (0,)},
            constraints=[Constraint("c", empty)],
        )
        tree = build_join_tree(csp)
        assert full_reduce(tree) is None

    def test_input_tree_not_mutated(self):
        csp = chain_csp(3, 2)
        tree = build_join_tree(csp)
        before = {n: r for n, r in tree.relations.items()}
        full_reduce(tree)
        assert tree.relations == before


class TestEnumeration:
    def test_chain_solutions(self):
        csp = chain_csp(3, 2)
        tree = build_join_tree(csp)
        solutions = list(enumerate_solutions(tree))
        assert len(solutions) == 2  # alternating 2-colorings
        for solution in solutions:
            assert csp.is_solution(solution)

    def test_matches_brute_force(self):
        csp = chain_csp(5, 3)
        tree = build_join_tree(csp)
        enumerated = {
            tuple(sorted(s.items())) for s in enumerate_solutions(tree)
        }
        brute = {
            tuple(sorted(s.items())) for s in csp.all_solutions()
        }
        assert enumerated == brute

    def test_unsat_enumerates_nothing(self):
        empty = Relation(("a", "b"), [])
        csp = CSP(
            domains={"a": (0,), "b": (0,)},
            constraints=[Constraint("c", empty)],
        )
        tree = build_join_tree(csp)
        assert list(enumerate_solutions(tree)) == []

    def test_no_duplicates(self):
        csp = chain_csp(4, 3)
        tree = build_join_tree(csp)
        solutions = [
            tuple(sorted(s.items())) for s in enumerate_solutions(tree)
        ]
        assert len(solutions) == len(set(solutions))


class TestCounting:
    def test_chain_count_formula(self):
        # path colorings: k * (k-1)^(n-1)
        for n, k in ((3, 2), (4, 3), (6, 2)):
            csp = chain_csp(n, k)
            tree = build_join_tree(csp)
            assert count_solutions(tree) == k * (k - 1) ** (n - 1)

    def test_count_matches_enumeration(self):
        csp = chain_csp(5, 3)
        tree = build_join_tree(csp)
        assert count_solutions(tree) == len(list(enumerate_solutions(tree)))

    def test_unsat_counts_zero(self):
        empty = Relation(("a", "b"), [])
        csp = CSP(
            domains={"a": (0,), "b": (0,)},
            constraints=[Constraint("c", empty)],
        )
        tree = build_join_tree(csp)
        assert count_solutions(tree) == 0


class TestCountCspSolutions:
    """End-to-end counting through decompositions (cyclic CSPs too)."""

    def test_cycle_coloring_formula(self):
        # C_n with k colors: (k-1)^n + (-1)^n (k-1)
        for n, k in ((4, 3), (5, 3), (6, 2)):
            csp = graph_coloring_csp(cycle_graph(n), k)
            expected = (k - 1) ** n + (-1) ** n * (k - 1)
            assert count_csp_solutions(csp) == expected

    def test_matches_brute_force_on_random(self):
        for seed in range(8):
            csp = random_binary_csp(6, 3, density=0.4, tightness=0.4,
                                    seed=seed + 60)
            assert count_csp_solutions(csp) == len(csp.all_solutions()), seed

    def test_australia_has_many_colorings(self):
        csp = australia_map_coloring()
        count = count_csp_solutions(csp)
        assert count == len(csp.all_solutions())
        assert count % 3 == 0  # color symmetry (and TAS contributes x3)

    def test_example_5(self):
        csp = thesis_example_5()
        assert count_csp_solutions(csp) == len(csp.all_solutions())

    def test_sat_model_counting(self):
        clauses = [[1, 2], [-1, 3], [-2, -3]]
        csp = sat_csp(clauses)
        assert count_csp_solutions(csp) == len(csp.all_solutions())

    def test_unconstrained_variables_multiply(self):
        csp = CSP(
            domains={"a": (0, 1), "b": (0, 1, 2)},
            constraints=[],
        )
        assert count_csp_solutions(csp) == 6

    def test_grid_coloring(self):
        csp = graph_coloring_csp(grid_graph(3), 2)
        # 3x3 grid is bipartite: exactly 2 proper 2-colorings
        assert count_csp_solutions(csp) == 2
