"""Tests for the upper- and lower-bound heuristics."""

import random

import pytest

from repro.bounds import (
    best_heuristic_ordering,
    clique_cover_lower_bound,
    degeneracy_lower_bound,
    gamma_r,
    ghw_lower_bound,
    min_degree_ordering,
    min_fill_ordering,
    min_width_ordering,
    minor_gamma_r,
    minor_min_width,
    treewidth_lower_bound,
    treewidth_upper_bound,
    tw_ksc_width,
)
from repro.decomposition import ordering_width
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    queen_graph,
    random_gnm_graph,
)
from repro.search import brute_force_treewidth


class TestUpperBoundOrderings:
    @pytest.mark.parametrize(
        "heuristic",
        [min_fill_ordering, min_degree_ordering, min_width_ordering],
    )
    def test_orderings_are_permutations(self, heuristic, grid4):
        ordering = heuristic(grid4)
        assert sorted(map(repr, ordering)) == sorted(
            map(repr, grid4.vertex_list())
        )

    def test_min_fill_optimal_on_trees(self):
        g = Graph.from_edges([(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)])
        assert ordering_width(g, min_fill_ordering(g)) == 1

    def test_min_fill_optimal_on_cycles(self, cycle5):
        assert ordering_width(cycle5, min_fill_ordering(cycle5)) == 2

    def test_min_fill_on_grid(self, grid4):
        width = ordering_width(grid4, min_fill_ordering(grid4))
        assert 4 <= width <= 6

    def test_hypergraph_input(self, adder5):
        ordering = min_fill_ordering(adder5)
        assert set(ordering) == set(adder5.vertex_list())

    def test_best_heuristic_ordering(self, grid4):
        ordering, width = best_heuristic_ordering(grid4)
        assert ordering_width(grid4, ordering) == width
        assert width >= 4  # treewidth of grid4

    def test_upper_bound_at_least_treewidth(self):
        for seed in range(5):
            g = random_gnm_graph(9, 16, seed=seed)
            assert treewidth_upper_bound(g) >= brute_force_treewidth(g)

    def test_rng_variants_still_valid(self, grid4):
        rng = random.Random(5)
        ordering = min_fill_ordering(grid4, rng)
        assert set(ordering) == set(grid4.vertex_list())


class TestTreewidthLowerBounds:
    @pytest.mark.parametrize(
        "bound",
        [degeneracy_lower_bound, minor_min_width, minor_gamma_r],
    )
    def test_sound_on_random_graphs(self, bound):
        for seed in range(8):
            g = random_gnm_graph(9, 14, seed=seed + 20)
            assert bound(g) <= brute_force_treewidth(g)

    def test_known_values_complete(self):
        g = complete_graph(6)
        assert minor_min_width(g) == 5
        assert degeneracy_lower_bound(g) == 5
        assert gamma_r(g) == 5

    def test_known_values_cycle(self, cycle5):
        assert degeneracy_lower_bound(cycle5) == 2
        assert minor_min_width(cycle5) == 2

    def test_known_values_path(self, path6):
        assert degeneracy_lower_bound(path6) == 1
        assert minor_min_width(path6) == 1

    def test_grid_bounds(self):
        g = grid_graph(4)
        lb = treewidth_lower_bound(g)
        assert 2 <= lb <= 4

    def test_gamma_r_star(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        # min over non-adjacent pairs of max degree: leaves have degree 1
        assert gamma_r(g) == 1

    def test_minor_gamma_r_at_least_gamma_r(self):
        for seed in range(5):
            g = random_gnm_graph(10, 20, seed=seed + 40)
            assert minor_gamma_r(g) >= gamma_r(g)

    def test_queen5_bounds_bracket_18(self):
        g = queen_graph(5)
        lb = treewidth_lower_bound(g)
        ub = treewidth_upper_bound(g)
        assert lb <= 18 <= ub

    def test_empty_graph(self):
        assert minor_min_width(Graph()) == 0
        assert degeneracy_lower_bound(Graph()) == 0

    def test_hypergraph_via_primal(self, adder5):
        assert minor_min_width(adder5) >= 1


class TestGhwLowerBounds:
    def test_tw_ksc_on_cliques(self):
        # clique_n: tw = n-1, rank 2 -> lb = ceil(n/2) = ghw exactly.
        for n in (4, 6, 8):
            h = clique_hypergraph(n)
            assert tw_ksc_width(h) == n // 2

    def test_sound_on_adders(self):
        # ghw(adder) = 2; lower bound must not exceed it.
        h = adder_hypergraph(10)
        assert 1 <= ghw_lower_bound(h) <= 2

    def test_edgeless(self):
        assert tw_ksc_width(Hypergraph(vertices=[1, 2])) == 0
        assert ghw_lower_bound(Hypergraph()) == 0

    def test_clique_cover_refinement_sound(self):
        for n in (4, 6):
            h = clique_hypergraph(n)
            assert clique_cover_lower_bound(h) <= n // 2

    def test_at_least_one_with_edges(self, example_hypergraph):
        assert ghw_lower_bound(example_hypergraph) >= 1
