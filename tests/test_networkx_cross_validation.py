"""Cross-validation against networkx — an independent implementation.

Everything in this package is built from scratch; these tests check the
substrate against a widely-used third-party library on randomized
inputs:

* graph mutation sequences (adjacency equality),
* chordality (``nx.is_chordal``),
* connected components,
* treewidth upper bounds (``nx.approximation.treewidth_min_fill_in`` is
  a valid upper bound, so both must dominate our exact values),
* maximum independent set (via max weight clique on the complement).
"""

import random

import networkx as nx
import pytest
from networkx.algorithms import approximation as nx_approx

from repro.apps import max_weight_independent_set
from repro.bounds import is_chordal
from repro.hypergraph import Graph
from repro.hypergraph.generators import random_gnm_graph
from repro.search import astar_treewidth, brute_force_treewidth


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertex_list())
    g.add_edges_from(graph.edges())
    return g


class TestGraphOperations:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_mutation_sequences_agree(self, seed):
        rng = random.Random(seed)
        ours = Graph(vertices=range(8))
        theirs = nx.Graph()
        theirs.add_nodes_from(range(8))
        for _ in range(60):
            op = rng.choice(["add_edge", "remove_edge", "remove_vertex",
                             "add_vertex"])
            if op == "add_edge":
                u, v = rng.randrange(12), rng.randrange(12)
                if u != v:
                    ours.add_edge(u, v)
                    theirs.add_edge(u, v)
            elif op == "remove_edge":
                edges = list(ours.edges())
                if edges:
                    u, v = edges[rng.randrange(len(edges))]
                    ours.remove_edge(u, v)
                    theirs.remove_edge(u, v)
            elif op == "remove_vertex":
                vertices = ours.vertex_list()
                if len(vertices) > 1:
                    v = vertices[rng.randrange(len(vertices))]
                    ours.remove_vertex(v)
                    theirs.remove_node(v)
            else:
                v = rng.randrange(15)
                ours.add_vertex(v)
                theirs.add_node(v)
            assert set(ours.vertex_list()) == set(theirs.nodes)
            assert {frozenset(e) for e in ours.edges()} == \
                {frozenset(e) for e in theirs.edges}
            assert ours.num_edges == theirs.number_of_edges()

    @pytest.mark.parametrize("seed", range(8))
    def test_elimination_matches_manual_fill(self, seed):
        """Our eliminate() equals 'clique the neighborhood then delete'
        performed on the networkx side."""
        ours = random_gnm_graph(9, 16, seed=seed + 16000)
        theirs = to_networkx(ours)
        rng = random.Random(seed)
        order = ours.vertex_list()
        rng.shuffle(order)
        for v in order[:5]:
            nbrs = list(theirs.neighbors(v))
            for i, a in enumerate(nbrs):
                for b in nbrs[i + 1:]:
                    theirs.add_edge(a, b)
            theirs.remove_node(v)
            ours.eliminate(v)
            assert {frozenset(e) for e in ours.edges()} == \
                {frozenset(e) for e in theirs.edges}


class TestStructuralPredicates:
    @pytest.mark.parametrize("seed", range(15))
    def test_chordality_agrees(self, seed):
        g = random_gnm_graph(9, 18, seed=seed + 16100)
        assert is_chordal(g) == nx.is_chordal(to_networkx(g))

    @pytest.mark.parametrize("seed", range(8))
    def test_connected_components_agree(self, seed):
        g = random_gnm_graph(12, 8, seed=seed + 16200)
        ours = sorted(map(sorted, g.connected_components()))
        theirs = sorted(
            sorted(c) for c in nx.connected_components(to_networkx(g))
        )
        assert ours == theirs


class TestWidths:
    @pytest.mark.parametrize("seed", range(8))
    def test_networkx_heuristic_upper_bounds_our_exact(self, seed):
        g = random_gnm_graph(9, 16, seed=seed + 16300)
        exact = astar_treewidth(g).width
        nx_width, _ = nx_approx.treewidth_min_fill_in(to_networkx(g))
        assert exact <= nx_width  # their heuristic is an upper bound
        assert exact == brute_force_treewidth(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_mis_agrees_via_complement_clique(self, seed):
        g = random_gnm_graph(9, 16, seed=seed + 16400)
        value, _ = max_weight_independent_set(g)
        complement = nx.complement(to_networkx(g))
        clique, weight = nx.max_weight_clique(complement, weight=None)
        assert value == weight == len(clique)
