"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, load_structure, main
from repro.hypergraph import Graph, Hypergraph


class TestLoadStructure:
    def test_registered_instance(self):
        structure = load_structure("myciel3")
        assert isinstance(structure, Graph)
        assert structure.num_vertices == 11

    def test_registered_hypergraph(self):
        structure = load_structure("adder_5")
        assert isinstance(structure, Hypergraph)

    def test_dimacs_file(self, tmp_path):
        path = tmp_path / "toy.col"
        path.write_text("p edge 3 2\ne 1 2\ne 2 3\n")
        structure = load_structure(str(path))
        assert isinstance(structure, Graph)
        assert structure.num_edges == 2

    def test_hypergraph_file(self, tmp_path):
        path = tmp_path / "toy.hg"
        path.write_text("c1(a,b,c),\nc2(c,d),\n")
        structure = load_structure(str(path))
        assert isinstance(structure, Hypergraph)
        assert structure.num_edges == 2

    def test_unknown_instance_exits(self):
        with pytest.raises(SystemExit):
            load_structure("definitely-not-an-instance")


class TestCommands:
    def test_tw_exact(self, capsys):
        assert main(["tw", "myciel3", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "treewidth = 5" in out

    def test_tw_ga(self, capsys):
        assert main(["tw", "myciel3", "--ga", "--budget", "5"]) == 0
        out = capsys.readouterr().out
        assert "treewidth <=" in out

    def test_ghw_exact(self, capsys):
        assert main(["ghw", "adder_5", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "ghw = 2" in out

    def test_ghw_on_graph_instance(self, capsys):
        # graphs are lifted to hypergraphs with binary edges
        assert main(["ghw", "myciel3", "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "ghw" in out

    def test_ghw_ga(self, capsys):
        assert main(["ghw", "adder_5", "--ga", "--budget", "5"]) == 0
        assert "ghw <=" in capsys.readouterr().out

    def test_hw(self, capsys):
        assert main(["hw", "adder_5"]) == 0
        assert "hypertree width = 2" in capsys.readouterr().out

    def test_hw_on_graph(self, capsys):
        assert main(["hw", "myciel3"]) == 0
        assert "hypertree width" in capsys.readouterr().out

    def test_portfolio_tw(self, capsys):
        assert main([
            "portfolio", "myciel3", "--jobs", "2", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "treewidth = 5" in out
        assert "deterministic" in out
        assert "astar-tw" in out and "min-fill" in out

    def test_portfolio_ghw(self, capsys):
        assert main([
            "portfolio", "adder_5", "--jobs", "2", "--budget", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "ghw = 2" in out

    def test_portfolio_backend_selection_and_timeline(self, capsys):
        assert main([
            "portfolio", "myciel3",
            "--backends", "min-fill,bb-tw",
            "--jobs", "1", "--budget", "60", "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "treewidth = 5" in out
        assert "2 backends" in out
        assert "bound timeline:" in out

    def test_portfolio_crashing_backend_reported(self, capsys):
        assert main([
            "portfolio", "myciel3",
            "--backends", "crash,bb-tw", "--jobs", "2", "--budget", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "treewidth = 5" in out
        assert "error:" in out

    def test_portfolio_unknown_backend(self, capsys):
        # Solver errors surface as a one-line stderr message and a
        # nonzero exit, not a traceback.
        assert main(["portfolio", "myciel3", "--backends", "nope"]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown backend" in err

    def test_solver_failure_closes_tracer(self, capsys, tmp_path, monkeypatch):
        # Regression: a raising solver used to leave the --trace file
        # open (truncated, unflushed) and dump a traceback.  The tracer
        # must be closed in ``finally`` and the error reported as one
        # stderr line with a nonzero exit.
        import json

        import repro.cli as cli

        def exploding_solver(structure, budget=None, **kwargs):
            budget.tracer.event("probe", progress=1)
            raise RuntimeError("injected solver failure")

        monkeypatch.setattr(cli, "astar_treewidth", exploding_solver)
        trace = tmp_path / "trace.jsonl"
        assert main(["tw", "myciel3", "--trace", str(trace)]) == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "injected solver failure" in err
        # The pre-crash record made it to disk and every line is JSON.
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(record.get("name") == "probe" for record in records)

    def test_ghw_from_hypergraph_file(self, capsys, tmp_path):
        # The file-sniffing path: a hyperedge list (no DIMACS header)
        # must load as a hypergraph and run the ghw pipeline end to end.
        path = tmp_path / "toy.hg"
        path.write_text("c1(a,b,c),\nc2(c,d),\nc3(d,e,a),\n")
        assert main(["ghw", str(path), "--budget", "30"]) == 0
        assert "ghw = " in capsys.readouterr().out

    def test_portfolio_from_hypergraph_file(self, capsys, tmp_path):
        path = tmp_path / "toy.hg"
        path.write_text("c1(a,b,c),\nc2(c,d),\nc3(d,e,a),\n")
        assert main([
            "portfolio", str(path), "--jobs", "2", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert "portfolio (ghw" in out
        assert "ghw = " in out

    def test_decompose(self, capsys, tmp_path):
        output = tmp_path / "out.td"
        assert main(["decompose", "myciel3", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "width" in out
        text = output.read_text()
        assert text.startswith("s td ")
        assert "b 1 " in text

    def test_instances_listing(self, capsys):
        assert main(["instances"]) == 0
        out = capsys.readouterr().out
        assert "queen5_5" in out
        assert "adder_75" in out

    def test_instances_kind_filter(self, capsys):
        assert main(["instances", "--kind", "hypergraph"]) == 0
        out = capsys.readouterr().out
        assert "adder_75" in out
        assert "queen5_5" not in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_file_roundtrip(self, capsys, tmp_path):
        from repro.hypergraph import write_dimacs
        from repro.hypergraph.generators import cycle_graph

        path = tmp_path / "cycle.col"
        path.write_text(write_dimacs(cycle_graph(6)))
        assert main(["tw", str(path), "--budget", "10"]) == 0
        assert "treewidth = 2" in capsys.readouterr().out
