"""Golden-width regression suite.

Pins the known exact widths of the registry instances the rest of the
test suite (and the paper record in EXPERIMENTS.md) relies on.  Any
solver change that moves one of these numbers is a correctness bug, not
a tuning difference: the values are either published (queen5_5,
myciel3/4 treewidths) or analytically forced (adder circuits have
ghw 2, a 2d grid has ghw 2, K_n has ghw ceil(n/2) since every bag must
cover a near-half clique with binary edges).
"""

from fractions import Fraction

import pytest

from repro.instances import get_instance
from repro.search import (
    astar_fhw,
    astar_ghw,
    branch_and_bound_ghw,
    branch_and_bound_treewidth,
)

GOLDEN_TREEWIDTHS = {
    "myciel3": 5,
    "myciel4": 10,
    "queen5_5": 18,
}

GOLDEN_GHWS = {
    "adder_5": 2,
    "adder_10": 2,
    "adder_15": 2,
    "clique_3": 2,   # ceil(3/2)
    "clique_5": 3,   # ceil(5/2)
    "clique_6": 3,   # ceil(6/2)
    "clique_8": 4,   # ceil(8/2)
    "clique_10": 5,  # ceil(10/2)
    "grid2d_4": 2,
    "bridge_5": 2,
    "fano": 3,       # two lines cover at most 5 of the 7 points
}

# Hand-verified fractional hypertree widths.  fhw(K_n over binary
# edges) = n/2: weight 1/(n-1) on every edge covers each vertex with
# total (n-1)/(n-1) = 1 at cost C(n,2)/(n-1) = n/2, and the LP dual
# y_v = 1/2 everywhere proves the matching bound.  The Fano plane's
# uniform-1/3 cover over its 7 lines costs 7/3, with dual y_v = 1/3.
GOLDEN_FHWS = {
    "clique_3": Fraction(3, 2),
    "clique_5": Fraction(5, 2),
    "clique_6": 3,
    "fano": Fraction(7, 3),
}


@pytest.mark.parametrize(
    "name,width", sorted(GOLDEN_TREEWIDTHS.items())
)
def test_golden_treewidth(name, width):
    result = branch_and_bound_treewidth(get_instance(name).build())
    assert result.exact, f"{name}: search did not close the gap"
    assert result.width == width


@pytest.mark.parametrize("name,width", sorted(GOLDEN_GHWS.items()))
def test_golden_ghw(name, width):
    result = branch_and_bound_ghw(get_instance(name).build())
    assert result.exact, f"{name}: search did not close the gap"
    assert result.width == width


@pytest.mark.parametrize("name,width", sorted(GOLDEN_GHWS.items()))
def test_golden_ghw_engine_differential(name, width):
    """The bitmask cover engine must not move any golden width: both
    engines run to exact termination here, where the dominance cache can
    only change *how fast* the optimum is proven, never its value."""
    hypergraph = get_instance(name).build()
    r_set = branch_and_bound_ghw(hypergraph, cover="set")
    r_bit = branch_and_bound_ghw(hypergraph, cover="bit")
    assert r_set.exact and r_bit.exact, f"{name}: a search did not close"
    assert r_set.width == r_bit.width == width
    assert r_set.lower_bound == r_bit.lower_bound
    assert r_set.upper_bound == r_bit.upper_bound


@pytest.mark.parametrize("name", ["adder_10", "clique_8", "grid2d_4"])
def test_golden_ghw_astar_engine_differential(name):
    """Same differential through the A* front end."""
    hypergraph = get_instance(name).build()
    r_set = astar_ghw(hypergraph, cover="set")
    r_bit = astar_ghw(hypergraph, cover="bit")
    assert r_set.exact and r_bit.exact
    assert r_set.width == r_bit.width == GOLDEN_GHWS[name]


@pytest.mark.parametrize("name", ["adder_5", "grid2d_4"])
def test_golden_ghw_portfolio_unchanged(name):
    """The portfolio's ghw backends (which run the bitmask engine by
    default) must still land exactly on the golden widths."""
    from repro.portfolio import run_portfolio

    result = run_portfolio(
        get_instance(name).build(),
        jobs=2,
        deterministic=True,
        max_nodes=50_000,
    )
    assert result.metric == "ghw"
    assert result.exact
    assert result.width == GOLDEN_GHWS[name]


@pytest.mark.parametrize("n,expected", [(6, 3), (8, 4), (10, 5)])
def test_clique_ghw_formula(n, expected):
    # ghw(K_n) = ceil(n/2): cross-check the registry values against the
    # closed form rather than trusting two copies of the same table.
    assert expected == -(-n // 2)
    assert GOLDEN_GHWS[f"clique_{n}"] == expected


@pytest.mark.parametrize("name,width", sorted(GOLDEN_FHWS.items()))
def test_golden_fhw(name, width):
    result = astar_fhw(get_instance(name).build())
    assert result.exact, f"{name}: search did not close the gap"
    assert result.width == width
    assert not isinstance(result.width, float)


@pytest.mark.parametrize("name,width", sorted(GOLDEN_FHWS.items()))
def test_golden_fhw_engine_differential(name, width):
    hypergraph = get_instance(name).build()
    r_set = astar_fhw(hypergraph, cover="set")
    r_bit = astar_fhw(hypergraph, cover="bit")
    assert r_set.exact and r_bit.exact
    assert r_set.width == r_bit.width == width


@pytest.mark.parametrize("name", ["clique_3", "clique_5", "fano"])
def test_fhw_strictly_below_ghw(name):
    """The fractional relaxation must actually buy something on the
    known separators — fhw < ghw strictly, not just ≤."""
    assert GOLDEN_FHWS[name] < GOLDEN_GHWS[name]
    result = astar_fhw(get_instance(name).build())
    assert result.exact
    assert result.width < GOLDEN_GHWS[name]


@pytest.mark.parametrize("name,width", sorted(GOLDEN_FHWS.items()))
def test_golden_fhw_matches_lp_enumeration(name, width):
    """Every bag of the witness FHD re-solves (by exhaustive vertex
    enumeration of the LP polytope, no simplex involved) to at most the
    golden width — and some bag meets it exactly."""
    from repro.decomposition import fhd_from_ordering
    from repro.setcover import enumerate_fractional_cover

    hypergraph = get_instance(name).build()
    result = astar_fhw(hypergraph)
    assert result.exact
    fhd = fhd_from_ordering(hypergraph, result.ordering)
    values = [
        enumerate_fractional_cover(fhd.bag(node), hypergraph)
        for node in fhd.nodes
    ]
    assert max(values) == width
