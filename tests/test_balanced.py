"""Tests for the balanced-separator parallel decomposition
(``repro.parallel``): golden widths, split invariants (hypothesis),
cross-component cache sharing, worker-pool determinism and teardown.
"""

import multiprocessing
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.bitgraph import BitGraph
from repro.instances import get_instance
from repro.parallel import (
    BALANCE_LADDER,
    BalancedBudgetExceeded,
    BalancedConfig,
    BalancedCore,
    balanced_ghw,
    decide_balanced_ghw,
)
from repro.parallel.balanced import UNBALANCED_RUNG, as_hypergraph
from repro.parallel.pool import PoolDriver, WorkerPool
from repro.telemetry import MemoryTracer, Metrics
from repro.verify import check_ghd


def _balanced_worker_children():
    """Live child processes that belong to a balanced worker pool."""
    return [
        p for p in multiprocessing.active_children()
        if (p.name or "").startswith("balanced-")
    ]


# ----------------------------------------------------------------------
# Strategies (same shape as tests/test_properties.py)
# ----------------------------------------------------------------------

@st.composite
def hypergraphs(draw, max_vertices=8, max_edges=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    h = Hypergraph(vertices=range(n))
    for i in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        h.add_edge(members, name=f"e{i}")
    for v in sorted(h.isolated_vertices()):
        h.add_edge({v}, name=f"iso{v}")
    return h


# ----------------------------------------------------------------------
# Golden widths
# ----------------------------------------------------------------------

# Known ghw values the balanced search must reproduce exactly.
# queen5_5 is pinned by the treewidth golden: ghw >= ceil((tw+1)/2)
# = ceil(19/2) = 10 (every bag of <= k edges spans <= 2k vertices...
# more precisely each hyperedge is binary, so a width-k GHD yields a
# tree decomposition of width <= 2k - 1, i.e. tw <= 2*ghw - 1), and
# the balanced search witnesses 10 from the min-fill start.
GOLDEN_BALANCED = {
    "fano": 3,
    "clique_5": 3,
    "grid2d_4": 2,
    "adder_5": 2,
    "bridge_5": 2,
}


@pytest.mark.parametrize("name,width", sorted(GOLDEN_BALANCED.items()))
def test_balanced_matches_golden_ghw(name, width):
    hg = as_hypergraph(get_instance(name).build())
    result = balanced_ghw(hg, BalancedConfig(deterministic=True))
    assert result.width == width
    assert result.certified
    assert not check_ghd(result.decomposition, hg, claimed_width=width)


def test_balanced_queen5_5_is_exactly_ten():
    hg = as_hypergraph(get_instance("queen5_5").build())
    result = balanced_ghw(
        hg,
        BalancedConfig(
            deterministic=True, max_subproblems=50, max_candidates=128
        ),
    )
    # tw(queen5_5) = 18 (golden), and binary edges give
    # tw <= 2*ghw - 1, so ghw >= ceil(19/2) = 10: the witnessed 10
    # is provably optimal.
    assert result.width == 10
    assert not check_ghd(result.decomposition, hg, claimed_width=10)


def test_balanced_b06_family():
    """The ISCAS b-family: b06 is pinned at 3 — better than the thesis
    Table 7.1 GA record of 4 — and the k=2 refusal is exhaustive, so
    the width is stable under any budget.  Siblings are bounded by
    their min-fill starts (balanced only ever improves on its start)."""
    hg = as_hypergraph(get_instance("b06").build())
    result = balanced_ghw(hg, BalancedConfig(deterministic=True))
    assert result.width == 3
    assert result.attempts == [(2, False)]
    assert not check_ghd(result.decomposition, hg, claimed_width=3)
    # Width 3 beats the published record, so double-check the witness
    # through the independent legacy validity API as well.
    assert not result.decomposition.violations(hg)

    for name, bound in (("b08", 7), ("b09", 10), ("b10", 10)):
        sibling = as_hypergraph(get_instance(name).build())
        res = balanced_ghw(
            sibling,
            BalancedConfig(max_seconds=3.0, max_subproblems=2000),
        )
        assert res.width <= min(bound, res.initial_upper)
        assert not check_ghd(
            res.decomposition, sibling, claimed_width=res.width
        )


# ----------------------------------------------------------------------
# Split invariants (satellite: hypothesis property)
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_accepted_splits_are_disconnected_and_balanced(h):
    """Every Split the candidate machinery accepts satisfies the two
    properties recursion correctness rests on: the child components are
    pairwise disconnected outside chi (checked against the BitGraph
    primal adjacency, an independent implementation), and the worst
    component respects the rung's balance ratio."""
    core = BalancedCore(h)
    bitgraph = BitGraph.from_hypergraph(h)
    k = 2
    for component, _ in core.top_components():
        scope = core.scope_mask(component, 0)
        for rung in (*BALANCE_LADDER, UNBALANCED_RUNG):
            for split in core.splits(component, 0, scope, k, rung, set()):
                live_total = (scope & ~split.chi_mask).bit_count()
                live_masks = []
                for child_component, child_connector in split.children:
                    child_scope = core.scope_mask(child_component, 0)
                    live_masks.append(child_scope & ~split.chi_mask)
                    # the child's connector is exactly its boundary in chi
                    assert core.engine.mask_of(child_connector) == (
                        child_scope & split.chi_mask
                    )
                worst = max(
                    (m.bit_count() for m in live_masks), default=0
                )
                assert split.balance == (worst, live_total)
                assert worst * rung.denominator <= (
                    live_total * rung.numerator
                )
                # pairwise disconnected: no primal edge crosses between
                # the live parts of two different components
                for i, mask_a in enumerate(live_masks):
                    for mask_b in live_masks[i + 1:]:
                        assert mask_a & mask_b == 0
                        reach = 0
                        for v in core.engine.mask_to_vertices(mask_a):
                            reach |= bitgraph.neighbors_mask(v)
                        assert reach & mask_b == 0
                # progress: covered an edge or genuinely split
                assert split.covered or len(split.children) >= 2


@settings(max_examples=25, deadline=None)
@given(hypergraphs(max_vertices=7, max_edges=7))
def test_balanced_width_is_certified_and_sound(h):
    result = balanced_ghw(h, BalancedConfig(deterministic=True))
    assert result.certified
    assert not check_ghd(
        result.decomposition, h, claimed_width=result.width
    )
    assert result.width <= result.initial_upper


# ----------------------------------------------------------------------
# Cross-component cache sharing (satellite 1)
# ----------------------------------------------------------------------

class TestComponentCache:
    def test_cross_component_hit_on_identical_edge_sets(self):
        """Two components with identical edge sets (the same subproblem
        reached along two different recursion paths) are solved once:
        the second ``decompose`` is answered from the component layer
        and bumps ``cache.cross_component_hit``."""
        hg = as_hypergraph(get_instance("grid2d_4").build())
        metrics = Metrics()
        core = BalancedCore(hg, BalancedConfig(deterministic=True), metrics)
        (component, _), *_ = core.top_components()
        hits = metrics.counter("cache.cross_component_hit")

        first = core.decompose(component, frozenset(), 2)
        assert first is not None
        hits_before = hits.value  # interior subproblems already share
        states_before = core.states

        second = core.decompose(component, frozenset(), 2)
        assert hits.value == hits_before + 1
        assert second is first  # reused, not re-solved
        assert core.states == states_before  # no new subproblem opened

    def test_negative_results_are_shared_too(self):
        hg = as_hypergraph(get_instance("fano").build())
        metrics = Metrics()
        core = BalancedCore(hg, BalancedConfig(deterministic=True), metrics)
        (component, _), *_ = core.top_components()
        assert core.decompose(component, frozenset(), 2) is None
        hits = metrics.counter("cache.cross_component_hit")
        before = hits.value  # interior subproblems already share
        assert core.decompose(component, frozenset(), 2) is None
        assert hits.value == before + 1

    def test_component_layer_dropped_on_edit(self):
        """Edge indices shift under hypergraph edits; the component
        memo must be invalidated wholesale."""
        hg = as_hypergraph(get_instance("grid2d_4").build())
        core = BalancedCore(hg, BalancedConfig(deterministic=True))
        (component, _), *_ = core.top_components()
        core.decompose(component, frozenset(), 2)
        assert core.cache.component
        core.cache.invalidate_intersecting(
            core.engine.mask_of(hg.vertex_list()[:1])
        )
        assert not core.cache.component


# ----------------------------------------------------------------------
# Worker pool: determinism, events, teardown (satellite 2)
# ----------------------------------------------------------------------

class TestWorkerPool:
    def test_pool_width_matches_sequential_deterministic(self):
        hg = as_hypergraph(get_instance("grid2d_4").build())
        sequential = balanced_ghw(hg, BalancedConfig(deterministic=True))
        pooled = balanced_ghw(
            hg, BalancedConfig(workers=2, deterministic=True)
        )
        assert pooled.width == sequential.width
        assert pooled.attempts == sequential.attempts
        assert not check_ghd(
            pooled.decomposition, hg, claimed_width=pooled.width
        )
        assert not _balanced_worker_children()

    def test_split_and_stitch_events_are_traced(self):
        hg = as_hypergraph(get_instance("grid2d_6").build())
        tracer = MemoryTracer()
        result = balanced_ghw(
            hg, BalancedConfig(deterministic=True), tracer=tracer
        )
        kinds = {record.get("name") for record in tracer.records}
        assert "split" in kinds
        assert "stitch" in kinds
        assert result.stats["parallel.splits"] >= 1
        assert result.stats["parallel.stitches"] >= 1

    def test_interrupt_mid_split_leaks_no_processes(self):
        """The regression the shutdown refactor exists for: tearing a
        pool down while solve/scan tasks are still in flight must kill
        every worker (terminate/join in ``finally``), not orphan them."""
        hg = as_hypergraph(get_instance("grid2d_6").build())
        driver = PoolDriver(hg, BalancedConfig(workers=2), Metrics())
        try:
            worker = threading.Thread(
                target=lambda: self._swallow(driver.decide, 2),
                daemon=True,
            )
            worker.start()
            deadline = time.monotonic() + 10.0
            while (
                driver.pool.c_tasks.value == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert driver.pool.c_tasks.value > 0, "no task ever started"
        finally:
            driver.close()  # the interrupt: teardown mid-flight
        driver.close()  # idempotent — a second call is a no-op
        deadline = time.monotonic() + 10.0
        while _balanced_worker_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _balanced_worker_children()

    @staticmethod
    def _swallow(fn, *args):
        try:
            fn(*args)
        except Exception:  # noqa: BLE001 — torn-down pool raises; fine
            pass

    def test_shutdown_fails_inflight_futures(self):
        hg = as_hypergraph(get_instance("grid2d_6").build())
        pool = WorkerPool(hg, BalancedConfig(workers=1), Metrics())
        core = BalancedCore(hg)
        (component, _), *_ = core.top_components()
        future = pool.submit(
            "solve", (component, frozenset(), 3, None), depth=0, origin=0
        )
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(Exception):
            future.result(timeout=5.0)
        assert not _balanced_worker_children()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

class TestEntryPoints:
    def test_backend_is_registered_but_not_default(self):
        from repro.portfolio.backends import BACKENDS, DEFAULT_BACKENDS

        assert "balanced-ghw" in BACKENDS
        assert BACKENDS["balanced-ghw"].kind == "ghw"
        assert "balanced-ghw" not in DEFAULT_BACKENDS["ghw"]

    def test_backend_report_shape(self):
        from repro.portfolio.backends import BACKENDS, BackendConfig
        from repro.search import BoundHooks

        hg = as_hypergraph(get_instance("fano").build())
        report = BACKENDS["balanced-ghw"].run(
            hg, BackendConfig(deterministic=True), BoundHooks()
        )
        assert report.backend == "balanced-ghw"
        assert report.upper_bound == 3
        assert report.ordering is None  # the witness is a GHD
        assert report.error is None

    def test_backend_publishes_incumbents(self):
        from repro.portfolio.backends import BACKENDS, BackendConfig
        from repro.search import BoundHooks

        hg = as_hypergraph(get_instance("grid2d_6").build())
        published = []
        hooks = BoundHooks(publish_upper=published.append)
        report = BACKENDS["balanced-ghw"].run(
            hg, BackendConfig(deterministic=True), hooks
        )
        assert published  # min-fill start, then every improvement
        assert min(published) == report.upper_bound

    def test_cli_balanced(self, capsys):
        from repro.cli import main

        assert main(["balanced", "fano", "--deterministic"]) == 0
        out = capsys.readouterr().out
        assert "ghw" in out
        assert "certified" in out

    def test_cli_balanced_workers(self, capsys):
        from repro.cli import main

        code = main([
            "balanced", "grid2d_4", "--workers", "2",
            "--deterministic", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        assert "parallel.subproblems" in out
        assert not _balanced_worker_children()

    def test_empty_and_trivial_instances(self):
        empty = Hypergraph()
        result = balanced_ghw(empty)
        assert result.width == 0 and result.exact

        single = Hypergraph(vertices=[1, 2])
        single.add_edge({1, 2}, name="e")
        result = balanced_ghw(single, BalancedConfig(deterministic=True))
        assert result.width == 1 and result.exact

    def test_isolated_vertices_rejected(self):
        h = Hypergraph(vertices=[1, 2, 3])
        h.add_edge({1, 2}, name="e")
        with pytest.raises(ValueError, match="isolated"):
            balanced_ghw(h)

    def test_graphs_are_lifted(self):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        result = balanced_ghw(g, BalancedConfig(deterministic=True))
        assert result.width == 2  # triangle: two binary edges
