"""Tests for greedy/exact set cover and the k-set-cover bounds."""

import itertools
import random

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import random_hypergraph
from repro.setcover import (
    SetCoverError,
    UNCOVERABLE,
    cover_lower_bound,
    exact_set_cover,
    greedy_set_cover,
    ksc_lower_bound,
    ksc_overlap_lower_bound,
    set_cover_size,
)


def brute_force_cover_size(bag, hypergraph):
    """Minimum cover size by exhaustive subset search."""
    bag = frozenset(bag)
    if not bag:
        return 0
    names = list(hypergraph.edges)
    edges = hypergraph.edges
    for size in range(1, len(names) + 1):
        for combo in itertools.combinations(names, size):
            union = frozenset().union(*(edges[n] for n in combo))
            if bag <= union:
                return size
    raise AssertionError("bag is uncoverable")


class TestGreedy:
    def test_covers_bag(self, example_hypergraph):
        cover = greedy_set_cover({"x1", "x4"}, example_hypergraph)
        union = frozenset().union(
            *(example_hypergraph.edge(n) for n in cover)
        )
        assert {"x1", "x4"} <= union

    def test_empty_bag(self, example_hypergraph):
        assert greedy_set_cover(set(), example_hypergraph) == []

    def test_uncoverable_raises(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(SetCoverError):
            greedy_set_cover({2}, h)

    def test_deterministic_without_rng(self, adder5):
        bag = set(list(adder5.vertex_list())[:6])
        assert greedy_set_cover(bag, adder5) == greedy_set_cover(bag, adder5)

    def test_rng_tie_breaking_still_covers(self, adder5):
        bag = set(list(adder5.vertex_list())[:8])
        rng = random.Random(3)
        cover = greedy_set_cover(bag, adder5, rng)
        union = frozenset().union(*(adder5.edge(n) for n in cover))
        assert bag <= union

    def test_greedy_picks_largest_first(self):
        h = Hypergraph(edges={"big": {1, 2, 3, 4}, "s1": {1, 2}, "s2": {3, 4}})
        assert greedy_set_cover({1, 2, 3, 4}, h) == ["big"]


class TestExact:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        h = random_hypergraph(8, 7, seed=seed, min_arity=1, max_arity=4)
        rng = random.Random(seed)
        covered = set().union(*h.edges.values())
        bag = {v for v in covered if rng.random() < 0.6}
        assert set_cover_size(bag, h) == brute_force_cover_size(bag, h)

    def test_exact_at_most_greedy(self, adder5):
        for k in (4, 8, 12):
            bag = set(list(adder5.vertex_list())[:k])
            assert len(exact_set_cover(bag, adder5)) <= len(
                greedy_set_cover(bag, adder5)
            )

    def test_classic_greedy_trap(self):
        """The instance where greedy uses 3 sets but optimum is 2."""
        h = Hypergraph(
            edges={
                "top": {1, 2, 3, 4},
                "bottom": {5, 6, 7, 8},
                "middle": {3, 4, 5, 6, 9},  # largest, greedy grabs it
            }
        )
        bag = {1, 2, 3, 4, 5, 6, 7, 8}
        assert len(exact_set_cover(bag, h)) == 2

    def test_cover_actually_covers(self, example_hypergraph):
        bag = {"x1", "x2", "x4", "x6"}
        cover = exact_set_cover(bag, example_hypergraph)
        union = frozenset().union(
            *(example_hypergraph.edge(n) for n in cover)
        )
        assert bag <= union

    def test_empty_bag(self, example_hypergraph):
        assert exact_set_cover(set(), example_hypergraph) == []

    def test_uncoverable_raises(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        with pytest.raises(SetCoverError):
            exact_set_cover({1, 2}, h)

    def test_forced_edge_reduction(self):
        h = Hypergraph(edges={"only": {1, 9}, "other": {2, 3}})
        cover = exact_set_cover({1, 2}, h)
        assert set(cover) == {"only", "other"}

    def test_node_budget_falls_back_to_greedy(self, adder5):
        bag = set(list(adder5.vertex_list())[:8])
        cover = exact_set_cover(bag, adder5, max_nodes=1)
        union = frozenset().union(*(adder5.edge(n) for n in cover))
        assert bag <= union
        assert len(cover) == len(greedy_set_cover(bag, adder5))

    def test_unknown_vertex_raises(self, example_hypergraph):
        with pytest.raises(SetCoverError):
            greedy_set_cover({"x1", "nope"}, example_hypergraph)
        with pytest.raises(SetCoverError):
            exact_set_cover({"x1", "nope"}, example_hypergraph)


class TestKscBounds:
    def test_cardinality_bound(self):
        assert ksc_lower_bound(10, 3) == 4
        assert ksc_lower_bound(9, 3) == 3
        assert ksc_lower_bound(0, 3) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ksc_lower_bound(5, 0)

    def test_overlap_bound_dominates(self):
        # 10 elements, sets of size 4 pairwise sharing >= 2: each new set
        # adds <= 2 -> need 1 + ceil(6/2) = 4 > ceil(10/4) = 3.
        assert ksc_overlap_lower_bound(10, 4, 2) == 4
        assert ksc_lower_bound(10, 4) == 3

    def test_overlap_zero_equals_cardinality(self):
        assert ksc_overlap_lower_bound(10, 4, 0) == ksc_lower_bound(10, 4)

    def test_overlap_at_least_k_degenerates(self):
        # Near-identical sets: only the trivial cardinality bound applies.
        assert ksc_overlap_lower_bound(10, 4, 4) == ksc_lower_bound(10, 4)
        with pytest.raises(ValueError):
            ksc_overlap_lower_bound(10, 4, -1)

    def test_small_universe_needs_one_set(self):
        assert ksc_overlap_lower_bound(3, 4, 1) == 1
        assert ksc_overlap_lower_bound(0, 4, 1) == 0

    def test_cover_lower_bound_sound(self, adder5):
        """The instance-aware bound never exceeds the true cover size."""
        rng = random.Random(0)
        vertices = adder5.vertex_list()
        for _ in range(12):
            bag = {v for v in vertices if rng.random() < 0.3}
            if not bag:
                continue
            lb = cover_lower_bound(bag, adder5)
            true = set_cover_size(bag, adder5)
            assert lb <= true

    def test_cover_lower_bound_uncoverable(self):
        h = Hypergraph(vertices=[1, 2], edges={"a": {1}})
        assert cover_lower_bound({2}, h) == UNCOVERABLE

    def test_cover_lower_bound_empty(self, adder5):
        assert cover_lower_bound(set(), adder5) == 0
