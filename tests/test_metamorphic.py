"""Metamorphic testing: known transformations with known width effects.

Width is a graph/hypergraph *property*: it must be invariant under
vertex relabeling and under the order edges happen to be inserted, and
it is monotone (never increases) under taking substructures.

One relation is deliberately absent: **ghw is not monotone under
general edge deletion**.  Removing a large edge can *increase* ghw —
the edge was cheap cover material (one edge covering a big bag), and
without it the same bag needs several smaller edges.  The sound ghw
deletion relations are vertex deletion (induced subhypergraphs) and
deleting a *subedge* (an edge contained in another edge, which can
always be re-covered by its superset).  Treewidth, by contrast, is
monotone under both edge and vertex deletion (it is minor-monotone).
"""

import random

from hypothesis import given, settings, strategies as st

from tests.conftest import make_covered_hypergraph, random_graphs
from repro.hypergraph import Graph, Hypergraph
from repro.search import (
    astar_fhw,
    astar_ghw,
    astar_treewidth,
    branch_and_bound_treewidth,
)


def exact_tw(graph) -> int:
    result = astar_treewidth(graph)
    assert result.exact
    return result.upper_bound


def exact_ghw(hypergraph) -> int:
    result = astar_ghw(hypergraph)
    assert result.exact
    return result.upper_bound


def exact_fhw(hypergraph):
    result = astar_fhw(hypergraph)
    assert result.exact
    assert not isinstance(result.upper_bound, float)
    return result.upper_bound


@st.composite
def graphs(draw, max_vertices=9):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    g = Graph(vertices=range(n))
    for u, v in edges:
        g.add_edge(u, v)
    return g


def relabeled_graph(graph, seed: int) -> tuple[Graph, dict]:
    """An isomorphic copy on fresh string labels, shuffled order."""
    rng = random.Random(seed)
    vertices = graph.vertex_list()
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    mapping = {v: f"x{i}" for i, v in enumerate(shuffled)}
    out = Graph(vertices=(mapping[v] for v in shuffled))
    edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
    rng.shuffle(edges)
    for u, v in edges:
        out.add_edge(u, v)
    return out, mapping


def relabeled_hypergraph(hypergraph, seed: int) -> Hypergraph:
    rng = random.Random(seed)
    vertices = hypergraph.vertex_list()
    shuffled = list(vertices)
    rng.shuffle(shuffled)
    mapping = {v: f"x{i}" for i, v in enumerate(shuffled)}
    names = hypergraph.edge_names()
    rng.shuffle(names)
    out = Hypergraph()
    for v in shuffled:
        out.add_vertex(mapping[v])
    for name in names:
        out.add_edge(
            {mapping[v] for v in hypergraph.edge(name)}, name=f"e_{name}"
        )
    return out


# ----------------------------------------------------------------------
# Treewidth
# ----------------------------------------------------------------------

class TestTreewidthInvariance:
    @settings(max_examples=20, deadline=None)
    @given(graphs(), st.integers(min_value=0, max_value=2**16))
    def test_invariant_under_relabeling(self, g, seed):
        copy, _ = relabeled_graph(g, seed)
        assert exact_tw(copy) == exact_tw(g)

    @settings(max_examples=20, deadline=None)
    @given(graphs(), st.integers(min_value=0, max_value=2**16))
    def test_invariant_under_edge_shuffle(self, g, seed):
        rng = random.Random(seed)
        edges = list(g.edges())
        rng.shuffle(edges)
        shuffled = Graph(vertices=g.vertex_list())
        for u, v in edges:
            shuffled.add_edge(u, v)
        assert exact_tw(shuffled) == exact_tw(g)
        # Both solvers see through the insertion order.
        bb = branch_and_bound_treewidth(shuffled.copy())
        assert bb.exact and bb.upper_bound == exact_tw(g)


class TestTreewidthMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(graphs(), st.integers(min_value=0, max_value=2**16))
    def test_monotone_under_edge_deletion(self, g, seed):
        edges = list(g.edges())
        if not edges:
            return
        tw = exact_tw(g)
        u, v = edges[seed % len(edges)]
        smaller = g.copy()
        smaller.remove_edge(u, v)
        assert exact_tw(smaller) <= tw

    @settings(max_examples=20, deadline=None)
    @given(graphs(), st.integers(min_value=0, max_value=2**16))
    def test_monotone_under_vertex_deletion(self, g, seed):
        tw = exact_tw(g)
        vertices = g.vertex_list()
        victim = vertices[seed % len(vertices)]
        smaller = g.copy()
        smaller.remove_vertex(victim)
        assert exact_tw(smaller) <= tw

    def test_deletion_chain_is_monotone(self):
        # Delete vertices one by one: widths form a non-increasing
        # staircase (each step is an induced subgraph of the last).
        for g in random_graphs(3, max_n=8, seed=5):
            widths = []
            current = g.copy()
            while current.num_vertices:
                widths.append(exact_tw(current.copy()))
                current.remove_vertex(current.vertex_list()[0])
            assert widths == sorted(widths, reverse=True)


# ----------------------------------------------------------------------
# ghw
# ----------------------------------------------------------------------

class TestGhwInvariance:
    def test_invariant_under_relabeling(self):
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed)
            assert exact_ghw(relabeled_hypergraph(h, seed)) == exact_ghw(h)

    def test_invariant_under_edge_shuffle(self):
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 100)
            names = h.edge_names()
            random.Random(seed).shuffle(names)
            shuffled = Hypergraph()
            for v in h.vertex_list():
                shuffled.add_vertex(v)
            for name in names:
                shuffled.add_edge(set(h.edge(name)), name=name)
            assert exact_ghw(shuffled) == exact_ghw(h)


class TestGhwMonotonicity:
    def test_monotone_under_vertex_deletion(self):
        # ghw(H[V - v]) <= ghw(H): restrict every bag of an optimal GHD
        # and keep its covers.
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 200)
            ghw = exact_ghw(h)
            for victim in h.vertex_list()[:3]:
                smaller = h.copy()
                smaller.remove_vertex(victim)
                if smaller.num_vertices == 0:
                    continue
                assert exact_ghw(smaller) <= ghw, (seed, victim)

    def test_monotone_under_subedge_deletion(self):
        # Deleting an edge contained in another edge cannot raise ghw:
        # any cover using the subedge can use the superset instead.
        checked = 0
        for seed in range(12):
            h = make_covered_hypergraph(6, 6, seed=seed + 300)
            edges = h.edges
            subedge = next(
                (
                    name
                    for name, members in edges.items()
                    for other, bigger in edges.items()
                    if other != name and members <= bigger
                ),
                None,
            )
            if subedge is None:
                continue
            ghw = exact_ghw(h)
            smaller = h.copy()
            smaller.remove_edge(subedge)
            if smaller.isolated_vertices():
                continue
            assert exact_ghw(smaller) <= ghw, (seed, subedge)
            checked += 1
        assert checked >= 2  # the relation was actually exercised


# ----------------------------------------------------------------------
# fhw
# ----------------------------------------------------------------------

class TestFhwInvariance:
    def test_invariant_under_relabeling(self):
        # ρ* of a bag depends only on the incidence structure, so fhw
        # must survive fresh labels and shuffled insertion order — and
        # the rational value must match exactly, not just its ceiling.
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 400)
            assert exact_fhw(relabeled_hypergraph(h, seed)) == exact_fhw(h)


class TestFhwMonotonicity:
    def test_monotone_under_vertex_deletion(self):
        # fhw(H[V - v]) <= fhw(H): restrict every bag of an optimal FHD
        # and keep its weight functions (coverage only loses rows).
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 500)
            fhw = exact_fhw(h)
            for victim in h.vertex_list()[:3]:
                smaller = h.copy()
                smaller.remove_vertex(victim)
                if smaller.num_vertices == 0 or smaller.isolated_vertices():
                    continue
                assert exact_fhw(smaller) <= fhw, (seed, victim)

    def test_monotone_under_subedge_deletion(self):
        # Deleting an edge contained in another cannot raise fhw: shift
        # the subedge's weight onto its superset and coverage survives.
        checked = 0
        for seed in range(12):
            h = make_covered_hypergraph(6, 6, seed=seed + 600)
            edges = h.edges
            subedge = next(
                (
                    name
                    for name, members in edges.items()
                    for other, bigger in edges.items()
                    if other != name and members <= bigger
                ),
                None,
            )
            if subedge is None:
                continue
            fhw = exact_fhw(h)
            smaller = h.copy()
            smaller.remove_edge(subedge)
            if smaller.isolated_vertices():
                continue
            assert exact_fhw(smaller) <= fhw, (seed, subedge)
            checked += 1
        assert checked >= 2  # the relation was actually exercised

    def test_fhw_at_most_ghw(self):
        # The relaxation direction of the invariant chain, on the same
        # generator the ghw metamorphic tests use.
        for seed in range(6):
            h = make_covered_hypergraph(6, 5, seed=seed + 700)
            assert exact_fhw(h) <= exact_ghw(h)
