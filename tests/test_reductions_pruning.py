"""Tests for the search-space reductions and pruning rules."""

import pytest

from repro.hypergraph import Graph
from repro.hypergraph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_gnm_graph,
)
from repro.search import (
    brute_force_treewidth,
    find_reducible,
    find_simplicial,
    find_strongly_almost_simplicial,
    pr1_closes_subtree,
    pr1_effective_width,
    reduce_graph,
    swap_equivalent,
)
from repro.decomposition import ordering_width


class TestSimplicial:
    def test_finds_leaf(self, path6):
        v = find_simplicial(path6)
        assert v in (0, 5)

    def test_triangle_all_simplicial(self, triangle):
        assert find_simplicial(triangle) is not None

    def test_none_on_cycle(self):
        g = cycle_graph(5)
        assert find_simplicial(g) is None

    def test_isolated_vertex_is_simplicial(self):
        g = Graph(vertices=[1, 2])
        g.add_edge(1, 2)
        g.add_vertex(3)
        assert find_simplicial(g) == 3


class TestStronglyAlmostSimplicial:
    def test_found_with_generous_bound(self):
        # cycle vertex: two non-adjacent neighbors -> almost simplicial
        g = cycle_graph(5)
        v = find_strongly_almost_simplicial(g, lower_bound=2)
        assert v is not None

    def test_degree_gate(self):
        g = cycle_graph(5)
        assert find_strongly_almost_simplicial(g, lower_bound=1) is None

    def test_none_on_dense_core(self):
        # 3x3 rook's graph: every vertex's neighborhood misses >= 2 edges
        g = Graph()
        for r in range(3):
            for c in range(3):
                for cc in range(c + 1, 3):
                    g.add_edge((r, c), (r, cc))
                for rr in range(r + 1, 3):
                    g.add_edge((r, c), (rr, c))
        assert find_strongly_almost_simplicial(g, lower_bound=0) is None


class TestReduceGraph:
    def test_chordal_graph_fully_reduces(self):
        # Trees are chordal: reduction should eat the whole graph.
        g = Graph.from_edges([(0, 1), (1, 2), (1, 3), (3, 4)])
        prefix, width = reduce_graph(g, 0)
        assert len(g) == 0
        assert width == 1
        assert len(prefix) == 5

    def test_reduction_width_matches_treewidth_on_chordal(self):
        # k-tree style chordal graph
        g = complete_graph(4)
        g.add_edge(0, 4), g.add_edge(1, 4), g.add_edge(2, 4)
        g.add_edge(1, 5), g.add_edge(2, 5), g.add_edge(3, 5)
        reference = g.copy()
        prefix, width = reduce_graph(g, 0)
        assert len(g) == 0
        assert width == brute_force_treewidth(reference) == 3

    def test_cycle_partially_reduces(self):
        g = cycle_graph(6)
        prefix, width = reduce_graph(g, 2)
        # with lb >= 2 the cycle is fully consumed by SAS reductions
        assert len(g) == 0
        assert width == 2


class TestPR1:
    def test_effective_width(self):
        assert pr1_effective_width(3, 10) == 9
        assert pr1_effective_width(7, 4) == 7

    def test_closes_subtree(self):
        assert pr1_closes_subtree(5, 6)
        assert not pr1_closes_subtree(5, 7)


class TestPR2:
    def test_non_adjacent_always_swappable(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        assert swap_equivalent(g, 1, 3)
        assert swap_equivalent(g, 1, 4)

    def test_adjacent_with_private_neighbors(self):
        g = Graph.from_edges([(1, 2), (1, 3), (2, 4)])
        # 1-2 adjacent; 1 has private neighbor 3, 2 has private 4.
        assert swap_equivalent(g, 1, 2)

    def test_adjacent_without_private_neighbor(self):
        g = Graph.from_edges([(1, 2), (1, 3), (2, 3)])
        # neighbors of 1 = {2,3}; of 2 = {1,3} -> no private ones.
        assert not swap_equivalent(g, 1, 2)

    def test_swap_preserves_width_semantics(self):
        """The rule's promise: swapping equivalent consecutive vertices
        preserves ordering width (checked exhaustively on small random
        graphs)."""
        import itertools

        for seed in range(6):
            g = random_gnm_graph(6, 8, seed=seed + 60)
            vertices = g.vertex_list()
            for ordering in itertools.permutations(vertices):
                for i in range(len(ordering) - 1):
                    scratch = g.copy()
                    for v in ordering[:i]:
                        scratch.eliminate(v)
                    a, b = ordering[i], ordering[i + 1]
                    if not swap_equivalent(scratch, a, b):
                        continue
                    swapped = list(ordering)
                    swapped[i], swapped[i + 1] = b, a
                    assert ordering_width(g, list(ordering)) == \
                        ordering_width(g, swapped)
                break  # one ordering per graph keeps this fast
