"""Tests for the benchmark instance registry."""

import pytest

from repro.hypergraph import Graph, Hypergraph
from repro.instances import (
    UnknownInstanceError,
    get_instance,
    instance_names,
    list_instances,
)


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(UnknownInstanceError):
            get_instance("not-a-real-instance")

    def test_kinds_partition(self):
        graphs = list_instances("graph")
        hypergraphs = list_instances("hypergraph")
        assert graphs and hypergraphs
        assert len(list_instances()) == len(graphs) + len(hypergraphs)

    def test_names_unique(self):
        names = instance_names()
        assert len(names) == len(set(names))

    def test_provenance_filter(self):
        exact = list_instances(provenance="exact")
        synthetic = list_instances(provenance="synthetic")
        assert exact and synthetic
        assert len(exact) + len(synthetic) == len(list_instances())


class TestExactConstructions:
    @pytest.mark.parametrize(
        "name", ["queen5_5", "queen6_6", "myciel3", "myciel4", "myciel5",
                 "grid2", "grid4", "grid6"],
    )
    def test_graph_vertex_counts_match(self, name):
        instance = get_instance(name)
        graph = instance.build()
        assert isinstance(graph, Graph)
        assert graph.num_vertices == instance.reported_vertices

    def test_myciel_edges_exact(self):
        for name in ("myciel3", "myciel4", "myciel5"):
            instance = get_instance(name)
            assert instance.build().num_edges == instance.reported_edges

    def test_queen_edges_are_half_of_reported(self):
        instance = get_instance("queen5_5")
        # DIMACS queen files double-list edges (noted on the instance).
        assert instance.build().num_edges * 2 == instance.reported_edges
        assert "doubled" in instance.notes
        assert instance.provenance == "exact"

    @pytest.mark.parametrize(
        "name",
        ["adder_75", "adder_99", "bridge_50", "clique_20", "grid2d_20",
         "grid3d_8"],
    )
    def test_hypergraph_counts_match(self, name):
        instance = get_instance(name)
        h = instance.build()
        assert isinstance(h, Hypergraph)
        assert h.num_vertices == instance.reported_vertices
        assert h.num_edges == instance.reported_edges
        assert instance.provenance == "exact"


class TestSyntheticStandins:
    @pytest.mark.parametrize(
        "name",
        ["DSJC125.1", "fpsol2.i.3", "le450_5a", "school1"],
    )
    def test_counts_match_table(self, name):
        instance = get_instance(name)
        graph = instance.build()
        assert graph.num_vertices == instance.reported_vertices
        assert graph.num_edges == instance.reported_edges
        assert instance.provenance == "synthetic"

    @pytest.mark.parametrize("name", ["anna", "miles250", "games120"])
    def test_doubled_families_are_halved(self, name):
        instance = get_instance(name)
        graph = instance.build()
        assert graph.num_edges * 2 == instance.reported_edges
        assert "doubled" in instance.notes

    def test_deterministic_builds(self):
        a = get_instance("anna").build()
        b = get_instance("anna").build()
        assert a == b

    @pytest.mark.parametrize("name", ["b06", "b09"])
    def test_circuit_standins(self, name):
        instance = get_instance(name)
        h = instance.build()
        assert h.num_vertices == instance.reported_vertices
        assert not h.isolated_vertices()


class TestFullRegistrySweep:
    """Every registered instance must build and match its reported size."""

    def test_all_graphs_build_and_match(self):
        from repro.instances.dimacs import _is_doubled

        for instance in list_instances("graph"):
            graph = instance.build()
            assert graph.num_vertices == instance.reported_vertices, \
                instance.name
            if _is_doubled(instance.name):
                # These DIMACS families double-list their edges.
                assert graph.num_edges * 2 == instance.reported_edges, \
                    instance.name
            else:
                assert graph.num_edges == instance.reported_edges, \
                    instance.name

    def test_all_hypergraphs_build_and_match(self):
        for instance in list_instances("hypergraph"):
            h = instance.build()
            assert h.num_vertices == instance.reported_vertices, \
                instance.name
            if instance.provenance == "exact":
                assert h.num_edges == instance.reported_edges, instance.name
            else:
                # circuit stand-ins may add stray-coverage edges
                assert h.num_edges >= instance.reported_edges, instance.name
            assert not h.isolated_vertices(), instance.name


class TestPaperMetadata:
    def test_table_5_1_values_attached(self):
        instance = get_instance("queen5_5")
        record = instance.paper["table_5_1"]
        assert record["astar"] == 18
        assert record["astar_exact"] is True

    def test_table_6_6_values_attached(self):
        instance = get_instance("queen16_16")
        record = instance.paper["table_6_6"]
        assert record["best_known_ub"] == 186
        assert record["ga_min"] == 186

    def test_table_7_1_values_attached(self):
        instance = get_instance("b09")
        record = instance.paper["table_7_1"]
        assert record["prior_best_ub"] == 10
        assert record["ga_min"] == 7

    def test_grid_table_5_2(self):
        instance = get_instance("grid6")
        record = instance.paper["table_5_2"]
        assert record["treewidth"] == 6
        assert record["astar_exact"] is True
