"""Property suite for the service's canonical hypergraph hash.

The cache key must be an isomorphism invariant (relabeled resubmissions
hit), must separate the golden non-isomorphic pairs, and must be stable
across runs and platforms (it keys a persistent-able cache and appears
in telemetry timelines) — pinned digests enforce the last."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import (
    clique_hypergraph,
    fano_plane_hypergraph,
    path_graph,
    random_gnm_graph,
    random_hypergraph,
)
from repro.service.canonical import canonical_form, canonical_key

# Pinned SHA-256 keys: any change here is a cache-format break (every
# deployed cache key changes) and must be deliberate.
FANO_KEY = "c8ea4572392e71d53afc3d7e1dc663b44571db4716381e27e526eaeebcba9644"
P4_KEY = "7ac83e9c557e3efd6a4dd8450a72c1af55ea3ccd9b8fe2dc74b6ddafe9da5eb3"


def relabeled_copy(
    hypergraph: Hypergraph, rng: random.Random, labels: str = "str"
) -> Hypergraph:
    """An isomorphic copy: permuted vertex labels (fresh names), shuffled
    edge insertion order, renamed edges."""
    vertices = hypergraph.vertex_list()
    if labels == "str":
        fresh = [f"relabel_{i}" for i in range(len(vertices))]
    else:
        fresh = list(range(1000, 1000 + len(vertices)))
    rng.shuffle(fresh)
    mapping = dict(zip(vertices, fresh))
    edges = list(hypergraph.edges.items())
    rng.shuffle(edges)
    copy = Hypergraph()
    for i, (_name, members) in enumerate(edges):
        copy.add_edge([mapping[v] for v in members], name=f"renamed{i}")
    for v in vertices:
        copy.add_vertex(mapping[v])  # preserve isolated vertices
    return copy


@st.composite
def small_hypergraphs(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    m = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    h = Hypergraph()
    for j in range(m):
        size = rng.randint(1, min(4, n))
        h.add_edge(rng.sample(range(n), size), name=f"e{j}")
    for v in range(n):
        h.add_vertex(v)
    return h


class TestRelabelInvariance:
    @given(small_hypergraphs(), st.integers(min_value=0, max_value=999),
           st.sampled_from(["str", "int"]))
    @settings(max_examples=60, deadline=None)
    def test_isomorphic_relabelings_hash_identically(self, h, seed, labels):
        form = canonical_form(h)
        copy = relabeled_copy(h, random.Random(seed), labels=labels)
        other = canonical_form(copy)
        assert other.key == form.key
        assert other.edges == form.edges
        assert other.num_vertices == form.num_vertices

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_fano_relabelings_hit_the_pinned_key(self, seed):
        copy = relabeled_copy(fano_plane_hypergraph(), random.Random(seed))
        assert canonical_key(copy) == FANO_KEY

    def test_graph_and_two_uniform_hypergraph_agree(self):
        g = random_gnm_graph(9, 16, seed=7)
        assert canonical_key(g) == canonical_key(Hypergraph.from_graph(g))

    def test_vertex_insertion_order_is_erased(self):
        a = Hypergraph(vertices=[1, 2, 3])
        a.add_edge([1, 2]); a.add_edge([2, 3])
        b = Hypergraph(vertices=[3, 2, 1])
        b.add_edge([2, 3]); b.add_edge([1, 2])
        assert canonical_key(a) == canonical_key(b)


class TestNonIsomorphicSeparation:
    def test_fano_vs_clique_5(self):
        assert canonical_key(fano_plane_hypergraph()) != canonical_key(
            clique_hypergraph(5)
        )

    def test_gnm_twins_differing_in_one_edge(self):
        base = random_gnm_graph(10, 18, seed=3)
        twin = base.copy()
        u, v = next(iter(twin.edges()))
        twin.remove_edge(u, v)
        # Re-add a different edge so |V| and |E| match the base.
        for a in twin.vertex_list():
            done = False
            for b in twin.vertex_list():
                if a != b and not twin.has_edge(a, b) and (a, b) != (u, v):
                    twin.add_edge(a, b)
                    done = True
                    break
            if done:
                break
        assert twin.num_edges == base.num_edges
        assert canonical_key(twin) != canonical_key(base)

    def test_edge_multiplicity_is_structure(self):
        single = Hypergraph()
        single.add_edge([1, 2, 3])
        doubled = Hypergraph()
        doubled.add_edge([1, 2, 3], name="a")
        doubled.add_edge([1, 2, 3], name="b")
        assert canonical_key(single) != canonical_key(doubled)

    def test_isolated_vertices_are_structure(self):
        bare = Hypergraph()
        bare.add_edge([1, 2])
        padded = bare.copy()
        padded.add_vertex("isolated")
        assert canonical_key(bare) != canonical_key(padded)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_distinct_random_instances_rarely_collide(self, seed):
        # Not a proof (hashes can collide) but any systematic canonical-
        # form merge of non-isomorphic instances shows up here fast.
        a = random_hypergraph(8, 10, seed=seed)
        b = random_hypergraph(8, 10, seed=seed + 1)
        fa, fb = canonical_form(a), canonical_form(b)
        if fa.edges != fb.edges:
            assert fa.key != fb.key


class TestStability:
    def test_pinned_digests(self):
        assert canonical_key(fano_plane_hypergraph()) == FANO_KEY
        assert canonical_key(path_graph(4)) == P4_KEY

    def test_repeated_runs_agree(self):
        h = random_hypergraph(9, 12, seed=11)
        keys = {canonical_key(h.copy()) for _ in range(5)}
        assert len(keys) == 1

    def test_fallback_is_deterministic_and_flagged(self):
        h = clique_hypergraph(6)
        starved = canonical_form(h, max_branch_nodes=1)
        assert not starved.canonical
        again = canonical_form(h, max_branch_nodes=1)
        assert starved.key == again.key
        assert starved.edges == again.edges
        # The full search still exists and is canonical.
        assert canonical_form(h).canonical


class TestOrderingMaps:
    @given(small_hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, h):
        form = canonical_form(h)
        ordering = h.vertex_list()
        assert form.map_ordering_out(form.map_ordering_in(ordering)) == (
            ordering
        )

    def test_cross_instance_transfer(self):
        # An ordering cached in canonical indices maps onto an
        # isomorphic copy as a valid ordering of the copy's labels.
        h = fano_plane_hypergraph()
        form = canonical_form(h)
        copy = relabeled_copy(h, random.Random(5))
        copy_form = canonical_form(copy)
        canonical_ordering = form.map_ordering_in(h.vertex_list())
        mapped = copy_form.map_ordering_out(canonical_ordering)
        assert sorted(map(repr, mapped)) == sorted(
            map(repr, copy.vertex_list())
        )
