"""Tests for Bayesian networks, moral graphs and GA-bn (thesis §4.5)."""

import math
import random

import pytest

from repro.csp import (
    BayesianNetwork,
    BayesianNetworkError,
    junction_tree_weight,
    random_bayesian_network,
    triangulation_weight,
)
from repro.genetic import GAParameters, ga_triangulation


def sprinkler_network():
    return BayesianNetwork(
        parents={
            "rain": [],
            "sprinkler": ["rain"],
            "wet": ["rain", "sprinkler"],
            "slippery": ["wet"],
        },
        states={"rain": 2, "sprinkler": 2, "wet": 2, "slippery": 2},
    )


class TestBayesianNetwork:
    def test_moral_graph_marries_parents(self):
        bn = sprinkler_network()
        moral = bn.moral_graph()
        assert moral.has_edge("rain", "sprinkler")  # married
        assert moral.has_edge("wet", "slippery")
        assert not moral.has_edge("rain", "slippery")

    def test_cycle_rejected(self):
        with pytest.raises(BayesianNetworkError):
            BayesianNetwork(parents={"a": ["b"], "b": ["a"]})

    def test_unknown_parent_rejected(self):
        with pytest.raises(BayesianNetworkError):
            BayesianNetwork(parents={"a": ["ghost"]})

    def test_bad_state_counts_rejected(self):
        with pytest.raises(BayesianNetworkError):
            BayesianNetwork(parents={"a": []}, states={"a": 0})
        with pytest.raises(BayesianNetworkError):
            BayesianNetwork(parents={"a": []}, states={"ghost": 2})

    def test_default_binary_states(self):
        bn = BayesianNetwork(parents={"a": [], "b": ["a"]})
        assert bn.states == {"a": 2, "b": 2}

    def test_random_network_is_dag(self):
        for seed in range(5):
            bn = random_bayesian_network(12, max_parents=3, seed=seed)
            assert len(bn.nodes) == 12
            for node, parents in bn.parents.items():
                assert all(p < node for p in parents)  # topological


class TestWeights:
    def test_triangulation_weight_formula(self):
        bags = [frozenset({"a", "b"}), frozenset({"b", "c"})]
        states = {"a": 2, "b": 3, "c": 4}
        assert triangulation_weight(bags, states) == math.log2(6 + 12)

    def test_empty(self):
        assert triangulation_weight([], {}) == 0.0

    def test_junction_tree_weight(self):
        bn = sprinkler_network()
        ordering = ["slippery", "sprinkler", "rain", "wet"]
        weight = junction_tree_weight(bn, ordering)
        assert weight > 0

    def test_weight_depends_on_ordering(self):
        bn = random_bayesian_network(10, max_parents=3, seed=1)
        nodes = bn.nodes
        a = junction_tree_weight(bn, nodes)
        b = junction_tree_weight(bn, list(reversed(nodes)))
        # not necessarily different, but both finite positive
        assert a > 0 and b > 0


class TestGATriangulation:
    def test_improves_over_random(self):
        bn = random_bayesian_network(14, max_parents=3, seed=3)
        rng = random.Random(0)
        random_ordering = bn.nodes
        rng.shuffle(random_ordering)
        baseline = junction_tree_weight(bn, random_ordering)
        result = ga_triangulation(
            bn, GAParameters(population_size=20, generations=25),
            rng=random.Random(1),
        )
        assert result.best_fitness <= baseline

    def test_result_is_achievable(self):
        bn = random_bayesian_network(10, max_parents=2, seed=5)
        result = ga_triangulation(
            bn, GAParameters(population_size=12, generations=10),
            rng=random.Random(2),
        )
        recomputed = junction_tree_weight(bn, result.best_individual)
        assert math.isclose(recomputed, result.best_fitness)

    def test_optimal_on_chain(self):
        # A chain network: perfect ordering keeps bags of size 2.
        bn = BayesianNetwork(
            parents={i: ([i - 1] if i else []) for i in range(8)},
        )
        result = ga_triangulation(
            bn, GAParameters(population_size=16, generations=20),
            rng=random.Random(3),
        )
        # 7 bags of 4 states + 1 bag of 2: log2(30); allow exact match.
        assert result.best_fitness <= math.log2(7 * 4 + 2) + 1e-9
