"""Unit tests for TreeDecomposition (structure and validity checking)."""

import pytest

from repro.decomposition import DecompositionError, TreeDecomposition
from repro.hypergraph import Graph, Hypergraph


def simple_td():
    td = TreeDecomposition()
    td.add_node("a", {1, 2, 3})
    td.add_node("b", {2, 3, 4})
    td.add_node("c", {4, 5})
    td.add_tree_edge("a", "b")
    td.add_tree_edge("b", "c")
    return td


class TestStructure:
    def test_width(self):
        td = simple_td()
        assert td.width == 2

    def test_empty_width(self):
        assert TreeDecomposition().width == -1

    def test_duplicate_node_rejected(self):
        td = simple_td()
        with pytest.raises(DecompositionError):
            td.add_node("a", {9})

    def test_edge_unknown_node(self):
        td = simple_td()
        with pytest.raises(DecompositionError):
            td.add_tree_edge("a", "zzz")

    def test_loop_edge_rejected(self):
        td = simple_td()
        with pytest.raises(DecompositionError):
            td.add_tree_edge("a", "a")

    def test_leaves(self):
        td = simple_td()
        assert set(td.leaves()) == {"a", "c"}

    def test_remove_node(self):
        td = simple_td()
        td.remove_node("c")
        assert td.num_nodes == 2
        assert "c" not in td.tree_neighbors("b")

    def test_is_tree(self):
        td = simple_td()
        assert td.is_tree()
        td.add_node("d", {7})
        assert not td.is_tree()  # disconnected
        td.add_tree_edge("d", "a")
        assert td.is_tree()
        td.add_tree_edge("d", "b")
        assert not td.is_tree()  # cycle

    def test_rooted_parents_and_depths(self):
        td = simple_td()
        parents = td.rooted_parents("a")
        assert parents == {"a": None, "b": "a", "c": "b"}
        assert td.depths("a") == {"a": 0, "b": 1, "c": 2}

    def test_topological_order(self):
        td = simple_td()
        order = td.topological_order("b")
        assert order[0] == "b"
        assert set(order) == {"a", "b", "c"}

    def test_path_between(self):
        td = simple_td()
        assert td.path_between("a", "c") == ["a", "b", "c"]
        assert td.path_between("b", "b") == ["b"]

    def test_nodes_containing(self):
        td = simple_td()
        assert set(td.nodes_containing(3)) == {"a", "b"}

    def test_covered_vertices(self):
        assert simple_td().covered_vertices() == {1, 2, 3, 4, 5}

    def test_copy_independent(self):
        td = simple_td()
        clone = td.copy()
        clone.set_bag("a", {9})
        assert td.bag("a") == frozenset({1, 2, 3})


class TestValidityOnGraphs:
    def test_valid_path_decomposition(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
        td = simple_td()
        assert td.is_valid(g)

    def test_missing_edge_detected(self):
        g = Graph.from_edges([(1, 5)])
        td = simple_td()
        problems = td.violations(g)
        assert any("not contained" in p for p in problems)

    def test_connectedness_violation_detected(self):
        td = TreeDecomposition()
        td.add_node("a", {1, 2})
        td.add_node("b", {2, 3})
        td.add_node("c", {1, 3})  # vertex 1 in a and c, but b between them
        td.add_tree_edge("a", "b")
        td.add_tree_edge("b", "c")
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        problems = td.violations(g)
        assert any("connectedness" in p for p in problems)

    def test_uncovered_vertex_detected(self):
        g = Graph(vertices=[1, 2, 3, 4, 5, 99])
        g.add_edge(1, 2)
        problems = simple_td().violations(g)
        assert any("99" in p and "no bag" in p for p in problems)

    def test_non_tree_detected(self):
        td = TreeDecomposition()
        td.add_node("a", {1})
        td.add_node("b", {1})
        problems = td.violations(Graph(vertices=[1]))
        assert "node graph is not a tree" in problems


class TestValidityOnHypergraphs:
    def test_hyperedge_containment(self):
        h = Hypergraph(edges={"big": {1, 2, 3, 4}})
        td = simple_td()
        problems = td.violations(h)
        assert any("big" in p for p in problems)

    def test_valid_hypergraph_decomposition(self, example_hypergraph):
        td = TreeDecomposition()
        td.add_node("p1", {"x1", "x2", "x3"})
        td.add_node("p2", {"x1", "x3", "x5"})
        td.add_node("p3", {"x3", "x4", "x5"})
        td.add_node("p4", {"x1", "x5", "x6"})
        td.add_tree_edge("p1", "p2")
        td.add_tree_edge("p2", "p3")
        td.add_tree_edge("p2", "p4")
        assert td.is_valid(example_hypergraph)
        assert td.width == 2
