"""The fractional cover layer (``repro.setcover.fractional``) and the
rational-width plumbing built on it.

Three battlegrounds:

* **The simplex itself** — property-tested against an independent
  brute-force oracle (:func:`enumerate_fractional_cover` solves the LP
  by enumerating basic feasible points via Gaussian elimination, no
  simplex involved) on every bag Hypothesis can draw with at most six
  candidate edges.
* **The engine's cache layers** — fractional ≤ exact ≤ greedy must hold
  through every dominance shortcut, and a cache-warmed engine must
  answer exactly like a cold one regardless of query order.
* **Rational-width regressions** — the latent int/float width
  assumptions that surfaced when widths stopped being integers:
  ``SearchResult.summary`` formatting, the portfolio's shared-bound
  channel and GA fitness reporting, and JSONL trace encoding.  Each has
  a pinned test so the ``int(...)``/f-string habits cannot creep back.
"""

import json
import math
import multiprocessing
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_covered_hypergraph
from repro.hypergraph import Hypergraph
from repro.setcover import (
    BitCoverEngine,
    SetCoverError,
    enumerate_fractional_cover,
    exact_set_cover,
    fractional_set_cover,
)
from repro.telemetry import Metrics
from repro.widths import Width, as_width, format_width, from_ratio, width_ratio


def triangle() -> Hypergraph:
    return Hypergraph(edges={"e1": {1, 2}, "e2": {2, 3}, "e3": {1, 3}})


# ----------------------------------------------------------------------
# Hypothesis: simplex vs brute-force LP enumeration
# ----------------------------------------------------------------------


@st.composite
def hypergraph_and_bag(draw):
    """A small hypergraph (≤ 6 edges) plus a coverable bag inside it."""
    n = draw(st.integers(min_value=2, max_value=6))
    vertices = list(range(n))
    num_edges = draw(st.integers(min_value=1, max_value=6))
    h = Hypergraph(vertices=vertices)
    for i in range(num_edges):
        members = draw(
            st.lists(
                st.sampled_from(vertices),
                min_size=1,
                max_size=min(3, n),
                unique=True,
            )
        )
        h.add_edge(members, name=f"e{i}")
    covered = sorted({v for edge in h.edges.values() for v in edge})
    bag = frozenset(
        draw(
            st.lists(
                st.sampled_from(covered),
                min_size=1,
                max_size=len(covered),
                unique=True,
            )
        )
    )
    return h, bag


class TestSimplexOracle:
    @settings(max_examples=120, deadline=None)
    @given(hypergraph_and_bag())
    def test_simplex_matches_enumeration(self, case):
        h, bag = case
        value, weights = fractional_set_cover(bag, h)
        assert value == enumerate_fractional_cover(bag, h)

    @settings(max_examples=80, deadline=None)
    @given(hypergraph_and_bag())
    def test_weights_are_a_feasible_rational_cover(self, case):
        h, bag = case
        value, weights = fractional_set_cover(bag, h)
        assert isinstance(value, Fraction)
        for name, weight in weights.items():
            assert isinstance(weight, Fraction), name
            assert weight > 0  # support-only weights
        assert sum(weights.values(), Fraction(0)) == value
        edges = h.edges
        for vertex in bag:
            coverage = sum(
                (w for name, w in weights.items() if vertex in edges[name]),
                Fraction(0),
            )
            assert coverage >= 1, vertex

    @settings(max_examples=80, deadline=None)
    @given(hypergraph_and_bag())
    def test_fractional_at_most_integral(self, case):
        h, bag = case
        value, _ = fractional_set_cover(bag, h)
        assert value <= len(exact_set_cover(bag, h))

    def test_uncoverable_bag_raises(self):
        h = Hypergraph(vertices=[1, 2, 3], edges={"e1": {1, 2}})
        with pytest.raises(SetCoverError):
            fractional_set_cover(frozenset({1, 3}), h)

    def test_empty_bag_costs_nothing(self):
        value, weights = fractional_set_cover(frozenset(), triangle())
        assert value == 0 and weights == {}

    def test_triangle_golden(self):
        value, weights = fractional_set_cover(frozenset({1, 2, 3}), triangle())
        assert value == Fraction(3, 2)
        assert set(weights.values()) == {Fraction(1, 2)}

    def test_fano_golden(self):
        from repro.hypergraph.generators import fano_plane_hypergraph

        h = fano_plane_hypergraph()
        value, weights = fractional_set_cover(
            frozenset(h.vertex_list()), h
        )
        assert value == Fraction(7, 3)
        assert enumerate_fractional_cover(frozenset(h.vertex_list()), h) == (
            Fraction(7, 3)
        )


# ----------------------------------------------------------------------
# The bit engine's fractional layer
# ----------------------------------------------------------------------


def _bag_masks(h: Hypergraph, engine: BitCoverEngine, seed: int, count: int):
    rng = random.Random(seed)
    vertices = h.vertex_list()
    covered = sorted({v for e in h.edges.values() for v in e}, key=repr)
    masks = []
    for _ in range(count):
        k = rng.randint(1, len(covered))
        masks.append(engine.mask_of(rng.sample(covered, k)))
    return masks


class TestEngineFractionalLayer:
    def test_chain_fractional_exact_greedy(self):
        for seed in range(6):
            h = make_covered_hypergraph(6, 5, seed=seed)
            engine = BitCoverEngine(h)
            for mask in _bag_masks(h, engine, seed, 12):
                frac = engine.fractional_size(mask)
                exact = engine.exact_size(mask)
                greedy = engine.greedy_size(mask)
                assert frac <= exact <= greedy, (seed, mask)
                assert math.ceil(frac) <= exact

    def test_cache_never_contradicts_a_cold_solve(self):
        # Warm one engine with a shuffled mix of fractional and exact
        # queries, then check every fractional answer against a fresh
        # engine answering that single query first.
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 40)
            warm = BitCoverEngine(h)
            masks = _bag_masks(h, warm, seed, 10)
            rng = random.Random(seed)
            plan = [(m, "frac") for m in masks] + [(m, "exact") for m in masks]
            rng.shuffle(plan)
            for mask, kind in plan:
                if kind == "frac":
                    warm.fractional_size(mask)
                else:
                    warm.exact_size(mask)
            for mask in masks:
                cold = BitCoverEngine(h)
                assert warm.fractional_size(mask) == cold.fractional_size(
                    mask
                ), (seed, mask)

    def test_engine_agrees_with_frozenset_path(self):
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 80)
            engine = BitCoverEngine(h)
            for mask in _bag_masks(h, engine, seed, 8):
                bag = frozenset(engine.mask_to_vertices(mask))
                assert engine.fractional_size(mask) == as_width(
                    fractional_set_cover(bag, h)[0]
                )

    def test_never_float(self):
        for seed in range(4):
            h = make_covered_hypergraph(6, 5, seed=seed + 120)
            engine = BitCoverEngine(h)
            for mask in _bag_masks(h, engine, seed, 8):
                value = engine.fractional_size(mask)
                assert isinstance(value, (int, Fraction))
                assert not isinstance(value, (bool, float))

    def test_fractional_cover_weights_witness_the_value(self):
        h = triangle()
        engine = BitCoverEngine(h)
        value, weights = engine.fractional_cover(engine.mask_of({1, 2, 3}))
        assert value == Fraction(3, 2)
        assert sum(weights.values(), Fraction(0)) == value

    def test_counters(self):
        metrics = Metrics()
        h = triangle()
        engine = BitCoverEngine(h, metrics=metrics)
        mask = engine.mask_of({1, 2, 3})
        engine.fractional_size(mask)
        engine.fractional_size(mask)
        counters = metrics.snapshot()["counters"]
        assert counters["cover.fractional.computed"] == 1
        assert counters["cover.fractional.hit"] == 1


class TestSearchAgreement:
    def test_astar_matches_brute_force(self):
        from repro.search import astar_fhw, brute_force_fhw

        for seed in range(3):
            h = make_covered_hypergraph(5, 4, seed=seed + 160)
            result = astar_fhw(h)
            assert result.exact
            assert result.width == brute_force_fhw(h)


# ----------------------------------------------------------------------
# Rational-width regressions (the latent int/float assumptions)
# ----------------------------------------------------------------------


class TestWidthHelpers:
    def test_as_width_collapses_and_rejects(self):
        assert as_width(Fraction(4, 2)) == 2
        assert isinstance(as_width(Fraction(4, 2)), int)
        assert as_width(Fraction(3, 2)) == Fraction(3, 2)
        with pytest.raises(TypeError):
            as_width(1.5)
        with pytest.raises(TypeError):
            as_width(True)

    def test_format_width(self):
        assert format_width(3) == "3"
        assert format_width(Fraction(7, 3)) == "7/3"
        assert format_width(Fraction(6, 3)) == "2"

    def test_ratio_roundtrip(self):
        for value in (0, 5, Fraction(7, 3), Fraction(3, 2)):
            assert from_ratio(*width_ratio(value)) == value


class TestSummaryFormatting:
    def test_integral_output_is_unchanged(self):
        from repro.search.common import SearchResult

        result = SearchResult(3, 3, [1, 2], True)
        assert result.summary().startswith("width = 3 |")
        loose = SearchResult(3, 2, [1, 2], False)
        assert loose.summary().startswith("width in [2, 3] |")

    def test_rational_bounds_render_exactly(self):
        from repro.search.common import SearchResult

        result = SearchResult(Fraction(7, 3), Fraction(7, 3), [1], True)
        assert result.summary("fhw").startswith("fhw = 7/3 |")
        loose = SearchResult(Fraction(5, 2), Fraction(4, 3), [1], False)
        assert loose.summary("fhw").startswith("fhw in [4/3, 5/2] |")

    def test_float_bound_raises_instead_of_printing(self):
        from repro.search.common import SearchResult

        with pytest.raises(TypeError):
            SearchResult(1.5, 1, [1], True).summary()


class TestSharedBoundsRational:
    def test_rational_merge_is_monotone(self):
        from repro.portfolio.shared import SharedBounds

        shared = SharedBounds(multiprocessing.get_context())
        assert shared.propose_upper(3) is True
        assert shared.propose_upper(Fraction(7, 3)) is True  # 7/3 < 3
        assert shared.propose_upper(Fraction(5, 2)) is False  # looser
        assert shared.upper() == Fraction(7, 3)
        assert shared.propose_lower(1) is True
        assert shared.propose_lower(Fraction(3, 2)) is True
        assert shared.propose_lower(Fraction(4, 3)) is False
        assert shared.lower() == Fraction(3, 2)

    def test_integral_values_come_back_as_ints(self):
        from repro.portfolio.shared import SharedBounds

        shared = SharedBounds(multiprocessing.get_context())
        shared.propose_upper(Fraction(4, 2))
        value = shared.upper()
        assert value == 2 and isinstance(value, int)

    def test_float_proposal_rejected_loudly(self):
        from repro.portfolio.shared import SharedBounds

        shared = SharedBounds(multiprocessing.get_context())
        with pytest.raises(TypeError):
            shared.propose_upper(2.5)

    def test_event_recorder_keeps_rationals(self):
        from repro.portfolio.shared import EventRecorder

        recorder = EventRecorder("astar-fhw", t0=0.0)
        recorder.record("ub", Fraction(7, 3))
        assert recorder.events[0].value == Fraction(7, 3)
        assert not isinstance(recorder.events[0].value, float)


class TestGaRationalReporting:
    def test_ga_report_preserves_fraction(self):
        from repro.genetic.engine import GAResult
        from repro.portfolio.backends import _ga_report

        result = GAResult(
            best_fitness=Fraction(3, 2),
            best_individual=[1, 2, 3],
            generations_run=1,
            evaluations=3,
        )
        report = _ga_report("ga-fhw", result)
        assert report.upper_bound == Fraction(3, 2)
        assert not isinstance(report.upper_bound, float)

    def test_ga_fhw_publishes_exact_widths(self):
        from repro.genetic import GAParameters, ga_fhw
        from repro.search import BoundHooks

        published = []
        result = ga_fhw(
            triangle(),
            GAParameters(population_size=6, generations=3),
            rng=random.Random(0),
            hooks=BoundHooks(publish_upper=published.append),
        )
        assert result.best_fitness == Fraction(3, 2)
        assert published, "GA never published its incumbent"
        for value in published:
            assert isinstance(value, (int, Fraction))
            assert not isinstance(value, (bool, float))
            assert value >= Fraction(3, 2)  # never undercuts the optimum


class TestTracerEncoding:
    def test_fractions_serialize_exactly(self, tmp_path):
        from repro.telemetry import JsonlTracer, read_jsonl

        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        tracer.event("bound_publish", kind="ub", value=Fraction(7, 3))
        tracer.close()
        records = list(read_jsonl(path))
        values = [
            r["fields"]["value"]
            for r in records
            if r.get("fields", {}).get("kind") == "ub"
        ]
        assert values == ["7/3"]  # exact string, never a lossy float

    def test_unknown_types_still_raise(self, tmp_path):
        from repro.telemetry import JsonlTracer

        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        with pytest.raises(TypeError):
            tracer.event("bad", value=object())
        tracer.close()


class TestPortfolioFhw:
    def test_deterministic_fhw_portfolio_is_exact(self):
        from repro.instances import get_instance
        from repro.portfolio import run_portfolio

        result = run_portfolio(
            get_instance("clique_5").build(),
            jobs=2,
            deterministic=True,
            metric="fhw",
            max_nodes=50_000,
        )
        assert result.metric == "fhw"
        assert result.exact
        assert result.width == Fraction(5, 2)
        assert not isinstance(result.width, float)
