"""Tests for the downstream DP applications (MWIS, colouring counts)."""

import random

import pytest

from repro.apps import (
    brute_force_color_count,
    brute_force_dominating_set,
    brute_force_mwis,
    count_colorings,
    is_k_colorable,
    max_weight_independent_set,
    min_weight_dominating_set,
)
from repro.decomposition import bucket_elimination
from repro.bounds import min_fill_ordering
from repro.hypergraph import Graph
from repro.hypergraph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    myciel_graph,
    path_graph,
    random_gnm_graph,
    star_graph,
)


class TestMWIS:
    def test_empty_graph(self):
        assert max_weight_independent_set(Graph()) == (0, set())

    def test_single_vertex(self):
        value, solution = max_weight_independent_set(Graph(vertices=[7]))
        assert value == 1 and solution == {7}

    def test_path(self):
        value, solution = max_weight_independent_set(path_graph(5))
        assert value == 3
        assert solution == {0, 2, 4}

    def test_cycle(self):
        value, _ = max_weight_independent_set(cycle_graph(7))
        assert value == 3

    def test_complete(self):
        value, solution = max_weight_independent_set(complete_graph(6))
        assert value == 1 and len(solution) == 1

    def test_star_weights(self):
        g = star_graph(4)
        heavy_center = {0: 100, 1: 1, 2: 1, 3: 1, 4: 1}
        value, solution = max_weight_independent_set(g, heavy_center)
        assert value == 100 and solution == {0}

    def test_grid(self):
        value, _ = max_weight_independent_set(grid_graph(4))
        assert value == 8  # checkerboard

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 10)
        m = rng.randint(0, n * (n - 1) // 2)
        g = random_gnm_graph(n, m, seed=seed + 9500)
        weights = {v: rng.randint(1, 5) for v in g.vertex_list()}
        value, solution = max_weight_independent_set(g, weights)
        assert value == brute_force_mwis(g, weights)
        assert all(
            not g.has_edge(u, v)
            for u in solution for v in solution if u != v
        )
        assert sum(weights[v] for v in solution) == value

    def test_with_custom_decomposition(self):
        g = cycle_graph(6)
        td = bucket_elimination(g, min_fill_ordering(g))
        value, _ = max_weight_independent_set(g, td=td)
        assert value == 3


class TestDominatingSet:
    def test_empty(self):
        assert min_weight_dominating_set(Graph()) == (0, set())

    def test_single_vertex(self):
        value, solution = min_weight_dominating_set(Graph(vertices=[5]))
        assert value == 1 and solution == {5}

    def test_isolated_vertices_forced_in(self):
        g = Graph.from_edges([(1, 2)])
        g.add_vertex(9)
        value, solution = min_weight_dominating_set(g)
        assert 9 in solution
        assert value == 2

    def test_star_center(self):
        value, solution = min_weight_dominating_set(star_graph(6))
        assert value == 1 and solution == {0}

    def test_path_formula(self):
        # γ(P_n) = ceil(n/3)
        for n in (3, 4, 6, 7, 9):
            value, _ = min_weight_dominating_set(path_graph(n))
            assert value == -(-n // 3), n

    def test_cycle_formula(self):
        # γ(C_n) = ceil(n/3)
        for n in (3, 5, 6, 9):
            value, _ = min_weight_dominating_set(cycle_graph(n))
            assert value == -(-n // 3), n

    def test_weights_change_the_answer(self):
        g = star_graph(3)
        heavy_center = {0: 10, 1: 1, 2: 1, 3: 1}
        value, solution = min_weight_dominating_set(g, heavy_center)
        # taking all leaves (cost 3) beats the heavy center (cost 10)
        assert value == 3 and solution == {1, 2, 3}

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 9)
        m = rng.randint(0, n * (n - 1) // 2)
        g = random_gnm_graph(n, m, seed=seed + 9700)
        weights = {v: rng.randint(1, 4) for v in g.vertex_list()}
        value, solution = min_weight_dominating_set(g, weights)
        assert value == brute_force_dominating_set(g, weights)
        for v in g.vertex_list():
            assert v in solution or (g.neighbors(v) & solution)

    def test_solution_cost_matches_value(self):
        g = grid_graph(3)
        value, solution = min_weight_dominating_set(g)
        assert len(solution) == value == 3


class TestColoringCounts:
    def test_empty_graph(self):
        assert count_colorings(Graph(), 3) == 1

    def test_zero_colors(self):
        assert count_colorings(path_graph(2), 0) == 0

    def test_single_vertex(self):
        assert count_colorings(Graph(vertices=[1]), 4) == 4

    def test_path_formula(self):
        # P_n has k * (k-1)^(n-1) proper colourings
        for n in (2, 3, 5):
            for k in (2, 3):
                assert count_colorings(path_graph(n), k) == \
                    k * (k - 1) ** (n - 1)

    def test_cycle_formula(self):
        # C_n has (k-1)^n + (-1)^n (k-1) proper colourings
        for n in (3, 4, 5, 6):
            for k in (2, 3, 4):
                expected = (k - 1) ** n + (-1) ** n * (k - 1)
                assert count_colorings(cycle_graph(n), k) == expected

    def test_complete_graph(self):
        # K_n: k * (k-1) * ... * (k-n+1)
        assert count_colorings(complete_graph(3), 3) == 6
        assert count_colorings(complete_graph(4), 3) == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 7)
        m = rng.randint(0, n * (n - 1) // 2)
        g = random_gnm_graph(n, m, seed=seed + 9600)
        for k in (2, 3):
            assert count_colorings(g, k) == brute_force_color_count(g, k)

    def test_negative_colors_rejected(self):
        with pytest.raises(ValueError):
            count_colorings(path_graph(2), -1)

    def test_k_colorability_decisions(self):
        assert is_k_colorable(cycle_graph(5), 3)
        assert not is_k_colorable(cycle_graph(5), 2)
        # the Grötzsch graph is triangle-free but 4-chromatic
        grotzsch = myciel_graph(3)
        assert is_k_colorable(grotzsch, 4)
        assert not is_k_colorable(grotzsch, 3)
