"""Table 5.1 — A*-tw on DIMACS graph colouring instances.

For each instance we report the initial lower/upper bounds, the value
A*-tw returns under a scaled budget, and whether it fixed the treewidth,
next to the thesis' columns.  Exact-construction instances (queen*,
myciel*) reproduce the paper's rows directly; stand-ins (*) match size
and family only (their absolute widths legitimately differ — the shape
being reproduced is which *kinds* of rows are fixed exactly vs. only
bounded).
"""

from __future__ import annotations

from repro.bounds import treewidth_lower_bound, treewidth_upper_bound
from repro.instances import get_instance
from repro.search import SearchBudget, astar_treewidth

from _harness import provenance_flag, report, scale

# Small/medium rows of Table 5.1 that run in Python-scale time.
BENCH_INSTANCES = [
    "anna", "david", "huck", "jean",
    "queen5_5", "queen6_6", "queen7_7",
    "myciel3", "myciel4", "myciel5",
    "miles250", "miles500",
    "zeroin.i.2", "zeroin.i.3",
    "DSJC125.1",
]


def run_table_5_1() -> list[list]:
    budget = SearchBudget(
        max_nodes=int(2500 * scale()), max_seconds=15 * scale()
    )
    rows = []
    for name in BENCH_INSTANCES:
        instance = get_instance(name)
        graph = instance.build()
        paper = instance.paper.get("table_5_1", {})
        lb = treewidth_lower_bound(graph)
        ub = treewidth_upper_bound(graph)
        result = astar_treewidth(graph, budget=budget)
        rows.append([
            name + provenance_flag(instance),
            graph.num_vertices,
            graph.num_edges,
            lb,
            ub,
            result.width if result.exact else f"[{result.lower_bound},{result.upper_bound}]",
            result.exact,
            paper.get("astar"),
            paper.get("astar_exact"),
        ])
    return rows


def test_table_5_1(benchmark):
    rows = benchmark.pedantic(run_table_5_1, rounds=1, iterations=1)
    report(
        "table_5_1",
        "Table 5.1 — A*-tw on DIMACS graphs (* = synthetic stand-in)",
        ["graph", "|V|", "|E|", "lb", "ub", "A*-tw", "exact",
         "paper A*", "paper exact"],
        rows,
    )
    by_name = {row[0].rstrip("*"): row for row in rows}
    # Exact-construction rows must reproduce the paper's values.
    assert by_name["queen5_5"][5] == 18 and by_name["queen5_5"][6]
    assert by_name["myciel3"][5] == 5 and by_name["myciel3"][6]
    assert by_name["myciel4"][5] == 10 and by_name["myciel4"][6]
    # The hard exact rows stay hard: myciel5 yields bounds, not a fix,
    # under scaled budgets — matching the paper's "*" entry shape is not
    # asserted (a large budget may legitimately fix it).
