"""Portfolio-vs-single-backend benchmark for the parallel anytime solver.

Per registry instance, every backend of the metric's default set runs
standalone (one worker, no bound exchange) under the same budget; then
the full portfolio races them with ``jobs=2`` and live incumbent
exchange.  Two properties are checked:

* **Width domination** (always enforced): the portfolio's width matches
  or beats every single backend's width — merging the workers' bounds
  can only tighten the answer.
* **Wall-clock win** (enforced at ``REPRO_BENCH_SCALE >= 0.25``,
  report-only below): on at least one instance the portfolio finishes
  faster than some standalone backend.  This is the shared channel
  paying for itself — e.g. the min-fill seed's incumbent lets A* skip
  most of its frontier, and a search's proven lower bound stops the GA
  at a generation boundary — not mere parallelism (the CI box has a
  single core).

Results go to ``benchmarks/results/portfolio.{txt,json}`` with the
git SHA / seed / scale stamp.  Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_portfolio.py
"""

from __future__ import annotations

import sys

from repro.instances import get_instance
from repro.portfolio import DEFAULT_BACKENDS, run_portfolio

from _harness import bench_seed, report, scale


def _instances() -> list[tuple[str, str]]:
    pairs = [("myciel3", "tw"), ("myciel4", "tw"), ("adder_10", "ghw")]
    if scale() >= 0.25:
        pairs += [("queen5_5", "tw"), ("grid2d_6", "ghw")]
    if scale() >= 1.0:
        pairs += [("queen6_6", "tw"), ("bridge_10", "ghw")]
    return pairs


def run_portfolio_benchmark() -> tuple[list[list], dict]:
    budget = max(5.0, 60.0 * scale())
    seed = bench_seed()
    rows: list[list] = []
    dominated_everywhere = True
    wallclock_wins: list[str] = []
    for name, metric in _instances():
        structure = get_instance(name).build()
        backends = DEFAULT_BACKENDS[metric]
        standalone: dict[str, tuple[int, float]] = {}
        for backend in backends:
            result = run_portfolio(
                structure,
                backends=[backend],
                jobs=1,
                budget_seconds=budget,
                seed=seed,
                metric=metric,
            )
            standalone[backend] = (result.width, result.elapsed_seconds)
            rows.append([
                name, metric, backend, result.width, result.exact,
                result.elapsed_seconds,
            ])
        race = run_portfolio(
            structure,
            jobs=2,
            budget_seconds=budget,
            seed=seed,
            metric=metric,
        )
        rows.append([
            name, metric, "portfolio", race.width, race.exact,
            race.elapsed_seconds,
        ])
        if any(race.width > width for width, _ in standalone.values()):
            dominated_everywhere = False
        beaten = [
            backend
            for backend, (_, seconds) in standalone.items()
            if race.elapsed_seconds < seconds
        ]
        if beaten:
            wallclock_wins.append(f"{name}: faster than {', '.join(beaten)}")
    extra = {
        "budget_seconds": budget,
        "width_domination": dominated_everywhere,
        "wallclock_wins": wallclock_wins,
        "gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "portfolio",
        "Portfolio (jobs=2, shared bounds) vs standalone backends",
        ["instance", "metric", "backend", "width", "exact", "seconds"],
        rows,
        extra=extra,
    )
    gate = "enforced" if extra["gate_enforced"] else "report-only at this scale"
    wins = extra["wallclock_wins"] or ["none"]
    print(f"width domination: {extra['width_domination']}")
    print(f"wall-clock wins ({gate}): " + "; ".join(wins))


def _gates_pass(extra: dict) -> bool:
    if not extra["width_domination"]:
        return False
    return bool(extra["wallclock_wins"]) or not extra["gate_enforced"]


def test_portfolio_benchmark(benchmark):
    rows, extra = benchmark.pedantic(
        run_portfolio_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    assert extra["width_domination"]
    if extra["gate_enforced"]:
        assert extra["wallclock_wins"]


if __name__ == "__main__":
    rows, extra = run_portfolio_benchmark()
    _report(rows, extra)
    sys.exit(0 if _gates_pass(extra) else 1)
