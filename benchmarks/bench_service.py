"""Service load generator: cache hit rate and hit latency under an
isomorphic-resubmission workload.

The workload models the service's intended deployment: a query
optimizer resubmitting the *same* join hypergraphs under fresh variable
names (new query, same shape).  Each base instance is submitted once
cold, then ``resubmits`` more times as random isomorphic relabelings —
every relabeling must land on the cold submission's cache entry via the
canonical hash, so the hit rate has a closed-form floor of
``1 - bases/total``.

Gates:

* **hit rate >= 90%** — hard at every scale (it measures correctness of
  the canonical hash + cache, not machine speed).
* **cache-hit p99 latency <= budget** — enforced at
  ``REPRO_BENCH_SCALE >= 0.25``, report-only below (CI smoke boxes are
  noisy; the hit path is pure canonicalization + dict lookup).
* **deadline probe** — one request with a near-zero budget must come
  back ``ok`` or ``bracket``; never an exception, never a traceback on
  the wire.

Results go to ``benchmarks/results/service.{txt,json}``.  Runs
standalone too::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import time

from repro.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    fano_plane_hypergraph,
    random_gnm_graph,
    random_hypergraph,
)
from repro.service import DecompositionService, ServiceClient, ServiceConfig

from _harness import METRICS, bench_seed, report, scale

HIT_RATE_TARGET = 0.90
HIT_P99_BUDGET_MS = 50.0


def _config() -> dict:
    if scale() >= 0.25:
        return {"resubmits": 24, "gnm": (12, 20), "rand": (9, 11),
                "budget": 20.0}
    return {"resubmits": 19, "gnm": (9, 14), "rand": (7, 9),
            "budget": 6.0}


def _relabeled(hypergraph: Hypergraph, rng: random.Random) -> Hypergraph:
    vertices = hypergraph.vertex_list()
    fresh = [f"v{rng.randrange(10**9)}_{i}" for i in range(len(vertices))]
    mapping = dict(zip(vertices, fresh))
    edges = list(hypergraph.edges.values())
    rng.shuffle(edges)
    copy = Hypergraph()
    for i, members in enumerate(edges):
        copy.add_edge([mapping[v] for v in members], name=f"e{i}")
    for v in vertices:
        copy.add_vertex(mapping[v])
    return copy


def _bases(config: dict) -> list[tuple[str, str, Hypergraph]]:
    n, m = config["gnm"]
    rn, rm = config["rand"]
    return [
        ("fano/ghw", "ghw", fano_plane_hypergraph()),
        ("gnm/tw", "tw",
         Hypergraph.from_graph(random_gnm_graph(n, m, seed=bench_seed()))),
        ("rand/tw", "tw",
         random_hypergraph(rn, rm, seed=bench_seed() + 1)),
    ]


async def _drive(config: dict) -> tuple[list[list], dict]:
    rng = random.Random(bench_seed())
    service = DecompositionService(ServiceConfig(
        port=0, default_budget=config["budget"],
        max_budget=max(60.0, config["budget"]),
    ))
    await service.start()
    client = await ServiceClient.connect(port=service.port)

    rows: list[list] = []
    hit_ms: list[float] = []
    total = 0
    hits = 0
    for label, metric, base in _bases(config):
        per_base_hit_ms: list[float] = []
        miss_ms = None
        width = None
        for i in range(1 + config["resubmits"]):
            instance = base if i == 0 else _relabeled(base, rng)
            start = time.perf_counter()
            response = await client.solve(instance, metric)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            assert response["status"] in ("ok", "bracket"), response
            assert "Traceback" not in json.dumps(response), response
            total += 1
            if i == 0:
                miss_ms = elapsed_ms
                width = response["width"]
            else:
                assert response["cache"] == "hit", response
                assert response["width"] == width, response
                hits += 1
                per_base_hit_ms.append(elapsed_ms)
                hit_ms.append(elapsed_ms)
                METRICS.histogram("service.hit_ms").observe(elapsed_ms)
        rows.append([
            label, base.num_vertices, base.num_edges, width,
            miss_ms, _pct(per_base_hit_ms, 50), _pct(per_base_hit_ms, 99),
        ])

    # Deadline probe: a near-zero budget must degrade, not explode.
    probe = Hypergraph.from_graph(
        random_gnm_graph(30, 90, seed=bench_seed() + 7)
    )
    probe_response = await client.solve(probe, "tw", budget=0.05)
    assert probe_response["status"] in ("ok", "bracket"), probe_response
    assert "Traceback" not in json.dumps(probe_response), probe_response

    stats = await client.stats()
    await client.close()
    await service.close()

    extra = {
        "total_requests": total,
        "hits": hits,
        "hit_rate": hits / total,
        "hit_rate_target": HIT_RATE_TARGET,
        "hit_p50_ms": _pct(hit_ms, 50),
        "hit_p99_ms": _pct(hit_ms, 99),
        "hit_p99_budget_ms": HIT_P99_BUDGET_MS,
        "deadline_probe_status": probe_response["status"],
        "server_stats": {
            "cache": stats["cache"], "solves": stats["solves"],
            "coalesced": stats["coalesced"], "errors": stats["errors"],
        },
        "latency_gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _pct(values: list[float], p: int) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1)))]


def run_service_benchmark() -> tuple[list[list], dict]:
    return asyncio.run(_drive(_config()))


def _report(rows: list[list], extra: dict) -> None:
    report(
        "service",
        "Decomposition service — isomorphic-resubmission workload",
        ["workload", "n", "m", "width", "miss ms", "hit p50 ms",
         "hit p99 ms"],
        rows,
        extra=extra,
    )
    gate = (
        "enforced" if extra["latency_gate_enforced"]
        else "report-only at this scale"
    )
    print(
        f"hit rate {extra['hit_rate']:.1%} over {extra['total_requests']} "
        f"requests (target >= {HIT_RATE_TARGET:.0%}, hard); "
        f"hit p99 {extra['hit_p99_ms']:.2f}ms "
        f"(budget {HIT_P99_BUDGET_MS:.0f}ms, {gate}); "
        f"deadline probe: {extra['deadline_probe_status']}"
    )


def _gate_ok(extra: dict) -> bool:
    if extra["hit_rate"] < HIT_RATE_TARGET:
        return False
    if extra["latency_gate_enforced"]:
        return extra["hit_p99_ms"] <= HIT_P99_BUDGET_MS
    return True


def test_service_hit_rate(benchmark):
    rows, extra = benchmark.pedantic(
        run_service_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    assert extra["hit_rate"] >= HIT_RATE_TARGET
    if extra["latency_gate_enforced"]:
        assert extra["hit_p99_ms"] <= HIT_P99_BUDGET_MS


if __name__ == "__main__":
    bench_rows, bench_extra = run_service_benchmark()
    _report(bench_rows, bench_extra)
    sys.exit(0 if _gate_ok(bench_extra) else 1)
