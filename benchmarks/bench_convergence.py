"""Anytime / convergence behaviour (the thesis reports these phenomena
in prose — §5.3 and the GA chapters — without plots; this bench emits
the series the plots would show).

* GA-tw best-width-per-generation curves (monotone nonincreasing),
* A*-tw anytime lower bound as a function of the node budget
  (monotone nondecreasing — §5.3).
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, ga_treewidth
from repro.instances import get_instance
from repro.search import SearchBudget, astar_treewidth

from _harness import report, scale


def run_ga_convergence() -> list[list]:
    rows = []
    generations = max(20, int(40 * scale()))
    for name in ("queen7_7", "games120"):
        graph = get_instance(name).build()
        result = ga_treewidth(
            graph,
            GAParameters(population_size=30, generations=generations),
            rng=random.Random(3),
        )
        history = result.history
        samples = [0, len(history) // 4, len(history) // 2,
                   3 * len(history) // 4, len(history) - 1]
        rows.append([
            name,
            *(history[i] for i in samples),
        ])
    return rows


def test_ga_convergence(benchmark):
    rows = benchmark.pedantic(run_ga_convergence, rounds=1, iterations=1)
    report(
        "convergence_ga",
        "GA-tw convergence (best width at 0/25/50/75/100% of the run)",
        ["graph", "gen 0", "25%", "50%", "75%", "final"],
        rows,
    )
    for row in rows:
        series = row[1:]
        assert all(a >= b for a, b in zip(series, series[1:])), row


def run_astar_anytime() -> list[list]:
    rows = []
    budgets = [5, 25, 100, 400]
    for name in ("queen6_6", "myciel5"):
        graph = get_instance(name).build()
        bounds = []
        for nodes in budgets:
            result = astar_treewidth(
                graph, budget=SearchBudget(max_nodes=int(nodes * scale()))
            )
            bounds.append(result.lower_bound)
        rows.append([name, *bounds])
    return rows


def test_astar_anytime(benchmark):
    rows = benchmark.pedantic(run_astar_anytime, rounds=1, iterations=1)
    report(
        "convergence_astar",
        "A*-tw anytime lower bounds by node budget (§5.3)",
        ["graph", "5 nodes", "25", "100", "400"],
        rows,
    )
    for row in rows:
        series = row[1:]
        assert all(a <= b for a, b in zip(series, series[1:])), row
