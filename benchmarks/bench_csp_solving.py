"""End-to-end CSP solving benchmark (thesis Figs. 2.8–2.9 in the large).

Compares the three solving routes on structured CSPs: chronological
backtracking vs. solving from a tree decomposition vs. solving from a
generalized hypertree decomposition.  On bounded-width instances the
decomposition routes scale polynomially where backtracking degrades —
the motivation the thesis' introduction gives for the entire enterprise.
"""

from __future__ import annotations

import time

from repro.csp import graph_coloring_csp, n_queens_csp, solve
from repro.hypergraph.generators import cycle_graph, grid_graph, path_graph

from _harness import report, scale


def _timed(csp, method):
    start = time.perf_counter()
    solution = solve(csp, method)
    elapsed = time.perf_counter() - start
    return solution, elapsed


def run_csp_comparison() -> list[list]:
    workloads = [
        ("3-color path(40)", graph_coloring_csp(path_graph(40), 3)),
        ("3-color cycle(30)", graph_coloring_csp(cycle_graph(30), 3)),
        ("3-color grid(4x4)", graph_coloring_csp(grid_graph(4), 3)),
        ("2-color cycle(9) UNSAT", graph_coloring_csp(cycle_graph(9), 2)),
        ("6-queens", n_queens_csp(6)),
    ]
    rows = []
    for label, csp in workloads:
        row = [label, len(csp.variables), len(csp.constraints)]
        statuses = []
        for method in ("backtracking", "td", "ghd"):
            solution, elapsed = _timed(csp, method)
            ok = csp.is_solution(solution) if solution is not None else None
            statuses.append(solution is not None)
            row.extend([f"{elapsed * 1000:.1f}ms",
                        "sat" if solution is not None else "unsat"])
            if solution is not None:
                assert ok, (label, method)
        assert len(set(statuses)) == 1, (label, "methods disagree")
        rows.append(row)
    return rows


def test_csp_solving(benchmark):
    rows = benchmark.pedantic(run_csp_comparison, rounds=1, iterations=1)
    report(
        "csp_solving",
        "End-to-end CSP solving: backtracking vs TD vs GHD",
        ["workload", "vars", "constraints",
         "bt time", "bt", "td time", "td", "ghd time", "ghd"],
        rows,
    )
    assert len(rows) == 5
