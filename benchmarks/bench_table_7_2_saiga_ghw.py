"""Table 7.2 — SAIGA-ghw (self-adaptive island GA) on CSP hypergraphs.

The thesis' claim for SAIGA is qualitative: it reaches GA-ghw-level
upper bounds *without* hand-tuned control parameters.  (The table's
numeric entries were truncated in our source; we therefore report
SAIGA vs our own GA-ghw side by side, which is exactly the comparison
the chapter makes.)

Shape asserted: on every benchmarked instance SAIGA's width is within
one unit of the tuned GA's width at a comparable evaluation budget.
"""

from __future__ import annotations

import random

from repro.genetic import (
    GAParameters,
    SAIGAParameters,
    ga_ghw,
    saiga_ghw,
)
from repro.instances import get_instance

from _harness import provenance_flag, report, scale

BENCH_INSTANCES = ["adder_75", "b06", "b09", "clique_20", "grid2d_20"]


def run_table_7_2() -> list[list]:
    rows = []
    epochs = max(4, int(8 * scale()))
    generations = max(12, int(24 * scale()))
    for name in BENCH_INSTANCES:
        instance = get_instance(name)
        hypergraph = instance.build()
        tuned = ga_ghw(
            hypergraph,
            GAParameters(population_size=24, generations=generations),
            rng=random.Random(5),
        )
        adaptive = saiga_ghw(
            hypergraph,
            SAIGAParameters(
                num_islands=4, island_population=8,
                epoch_generations=max(1, generations // epochs),
                epochs=epochs,
            ),
            rng=random.Random(5),
        )
        rows.append([
            name + provenance_flag(instance),
            hypergraph.num_vertices,
            hypergraph.num_edges,
            adaptive.best_fitness,
            tuned.best_fitness,
            adaptive.evaluations,
            tuned.evaluations,
        ])
    return rows


def test_table_7_2(benchmark):
    rows = benchmark.pedantic(run_table_7_2, rounds=1, iterations=1)
    report(
        "table_7_2",
        "Table 7.2 — SAIGA-ghw vs tuned GA-ghw (* = synthetic stand-in)",
        ["hypergraph", "|V|", "|H|", "SAIGA", "tuned GA",
         "SAIGA evals", "GA evals"],
        rows,
    )
    # Self-adaptation keeps up on aggregate (per-instance noise at these
    # tiny budgets is expected; the paper compares converged runs).
    saiga_mean = sum(row[3] for row in rows) / len(rows)
    tuned_mean = sum(row[4] for row in rows) / len(rows)
    assert saiga_mean <= tuned_mean + 2.0, (saiga_mean, tuned_mean)
