"""Vector population kernel vs the incremental GA-ghw evaluator.

Both arms run the same GA-ghw configuration on the Table 7.1 instances:

* **incremental** — the PR-4 baseline, ``ga_ghw(vector=False,
  incremental=True)``: the :class:`~repro.genetic.ga_ghw.PrefixGhwEvaluator`
  scoring one individual at a time with shared elimination prefixes.
* **vector** — ``ga_ghw(vector=True)``: the numpy
  :class:`~repro.vector.kernel.VectorGhwEvaluator` evaluating each
  generation as one population x vertex tensor batch (local-coordinate
  elimination, batched greedy covers through the same
  :class:`~repro.setcover.bitcover.CoverCache`).

Every run pair is asserted **bit-identical** — best fitness, best
ordering, per-generation history and evaluation counts — so the speedup
is a pure kernel ratio, never a search-quality trade.

Acceptance: median evals/sec ratio >= 3x, enforced at
``REPRO_BENCH_SCALE >= 0.25``; starved budgets (the CI smoke at 0.05)
still assert bit-identity on every instance but report the timing only.
Results (with the numpy version, git SHA and seed stamped) go to
``benchmarks/results/ga_vector.{txt,json}``.  Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_ga_vector.py
"""

from __future__ import annotations

import random
import statistics
import sys
import time

from repro.genetic import GAParameters, ga_ghw
from repro.instances import get_instance
from repro.vector import numpy_available

from _harness import METRICS, bench_seed, report, scale

SPEEDUP_TARGET = 3.0

BENCH_INSTANCES = [
    "adder_75", "b06", "b08", "b09", "b10",
    "bridge_50", "c499", "clique_20", "grid2d_20", "grid3d_8",
]


def _numpy_version() -> str | None:
    if not numpy_available():
        return None
    import numpy

    return numpy.__version__


def run_vector_benchmark() -> tuple[list[list], dict]:
    if not numpy_available():
        # The no-numpy CI leg: nothing to race, nothing to gate.
        return [], {
            "numpy_version": None,
            "median_evals_ratio": None,
            "speedup_target": SPEEDUP_TARGET,
            "gate_enforced": False,
        }
    pop, gens = (24, 20) if scale() >= 0.25 else (12, 6)
    params = GAParameters(population_size=pop, generations=gens)
    seed = bench_seed() + 7
    rows: list[list] = []
    ratios: list[float] = []
    for name in BENCH_INSTANCES:
        hypergraph = get_instance(name).build()

        start = time.perf_counter()
        baseline = ga_ghw(
            hypergraph, parameters=params, rng=random.Random(seed),
            rescore_exact=False, vector=False, incremental=True,
        )
        t_inc = time.perf_counter() - start

        start = time.perf_counter()
        vector = ga_ghw(
            hypergraph, parameters=params, rng=random.Random(seed),
            rescore_exact=False, vector=True, metrics=METRICS,
        )
        t_vec = time.perf_counter() - start

        # Bit-identity: the ratio below is a pure kernel speedup.
        assert vector.best_fitness == baseline.best_fitness, name
        assert vector.best_individual == baseline.best_individual, name
        assert vector.history == baseline.history, name
        assert vector.evaluations == baseline.evaluations, name

        eps_inc = baseline.evaluations / t_inc if t_inc > 0 else 0.0
        eps_vec = vector.evaluations / t_vec if t_vec > 0 else 0.0
        ratio = eps_vec / eps_inc if eps_inc > 0 else float("inf")
        ratios.append(ratio)
        rows.append([
            name, int(vector.best_fitness), vector.evaluations,
            eps_inc, eps_vec, ratio,
        ])
        METRICS.histogram("vector.evals_per_second").observe(eps_vec)

    extra = {
        "numpy_version": _numpy_version(),
        "median_evals_ratio": statistics.median(ratios),
        "speedup_target": SPEEDUP_TARGET,
        "ga_population": pop,
        "ga_generations": gens,
        "seed": seed,
        "gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "ga_vector",
        "GA-ghw — incremental evaluator vs numpy population kernel",
        ["hypergraph", "ghw<=", "evals", "inc evals/s", "vec evals/s",
         "ratio"],
        rows,
        extra=extra,
    )
    if extra["median_evals_ratio"] is None:
        print("numpy unavailable; vector benchmark skipped")
        return
    gate = "enforced" if extra["gate_enforced"] else "report-only at this scale"
    print(
        f"median evals/sec ratio: {extra['median_evals_ratio']:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x, {gate}; "
        f"numpy {extra['numpy_version']})"
    )


def _gate_ok(extra: dict) -> bool:
    if not extra["gate_enforced"] or extra["median_evals_ratio"] is None:
        return True
    return extra["median_evals_ratio"] >= SPEEDUP_TARGET


def test_vector_speedup(benchmark):
    rows, extra = benchmark.pedantic(
        run_vector_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    if extra["gate_enforced"] and extra["median_evals_ratio"] is not None:
        assert extra["median_evals_ratio"] >= SPEEDUP_TARGET


if __name__ == "__main__":
    bench_rows, bench_extra = run_vector_benchmark()
    _report(bench_rows, bench_extra)
    sys.exit(0 if _gate_ok(bench_extra) else 1)
