"""Shared helpers for the benchmark suite.

Every ``bench_table_*.py`` module regenerates one table of the thesis:
it runs the corresponding algorithm on the registered instances (scaled
budgets — see DESIGN.md), prints a paper-vs-measured table and appends
it to ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Budgets are controlled by the REPRO_BENCH_SCALE environment variable
(default 1.0; larger = longer runs, closer to the thesis' budgets).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from collections.abc import Sequence

from repro.telemetry import Metrics

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Registry the benchmark modules record into (counters/gauges/histograms);
# ``report`` stamps its snapshot into every results JSON, so a results
# file always says how much work produced it, not just the table.
METRICS = Metrics()


def scale() -> float:
    """Global budget multiplier (REPRO_BENCH_SCALE, default 1.0)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def bench_seed() -> int:
    """Global RNG seed for the benchmark runs (REPRO_BENCH_SEED)."""
    try:
        return int(os.environ.get("REPRO_BENCH_SEED", "0"))
    except ValueError:
        return 0


def git_sha() -> str:
    """The repo's current commit (short SHA; 'unknown' outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    sha = out.stdout.strip()
    if subprocess.run(
        ["git", "diff", "--quiet", "HEAD"],
        cwd=pathlib.Path(__file__).parent,
        capture_output=True,
        timeout=10,
    ).returncode != 0:
        sha += "-dirty"
    return sha


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """A plain-text table with aligned columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


def report(name: str, title: str, headers, rows, extra: dict | None = None) -> str:
    """Print the table and persist it under benchmarks/results/.

    Writes both a plain-text table (``<name>.txt``) and a
    machine-readable ``<name>.json`` with the raw rows; ``extra`` merges
    additional top-level keys (e.g. summary statistics) into the JSON.
    Every JSON also carries a snapshot of the module-level ``METRICS``
    registry (record into it with ``record_search`` or directly).
    """
    text = format_table(title, headers, rows)
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "title": title,
        "git_sha": git_sha(),
        "seed": bench_seed(),
        "scale": scale(),
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "metrics": METRICS.snapshot(),
    }
    if extra:
        payload.update(extra)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )
    return text


def provenance_flag(instance) -> str:
    return "" if instance.provenance == "exact" else "*"


def record_search(result, prefix: str = "search") -> None:
    """Fold one :class:`~repro.search.common.SearchResult`'s stats into
    the harness ``METRICS`` (call it per run; ``report`` does the rest).
    """
    stats = result.stats
    METRICS.counter(f"{prefix}.runs").inc()
    METRICS.counter(f"{prefix}.nodes_expanded").inc(stats.nodes_expanded)
    METRICS.counter(f"{prefix}.reductions_forced").inc(
        stats.reductions_forced
    )
    METRICS.counter(f"{prefix}.bounds_published").inc(stats.bounds_published)
    if stats.budget_exhausted:
        METRICS.counter(f"{prefix}.budget_exhausted").inc()
    METRICS.histogram(f"{prefix}.elapsed_seconds").observe(
        stats.elapsed_seconds
    )
    METRICS.histogram(f"{prefix}.max_frontier").observe(stats.max_frontier)
