"""Table 6.6 — GA-tw final results on DIMACS graphs.

The thesis runs GA-tw with the tuned parameters (POS, ISM, pc=1.0,
pm=0.3, s=3, population 2000, 2000 generations) on 62 graphs and
compares with the best published upper bounds.  We reproduce a curated
subset at Python scale and report measured vs. the paper's ga_min and
the prior best-known upper bound.

Shape asserted: on exact-construction instances the GA's width lands
within a small factor of the paper's GA result, and on queen5_5 /
myciel3/4/5 it matches the published value exactly (these are small
enough for the scaled GA to converge).
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, ga_treewidth
from repro.instances import get_instance

from _harness import provenance_flag, report, scale

BENCH_INSTANCES = [
    "queen5_5", "queen6_6", "queen7_7", "queen8_8",
    "myciel3", "myciel4", "myciel5", "myciel6",
    "games120", "anna", "david", "huck", "jean",
    "miles250", "zeroin.i.3", "DSJC125.1",
]


def run_table_6_6() -> list[list]:
    rows = []
    generations = max(20, int(60 * scale()))
    for name in BENCH_INSTANCES:
        instance = get_instance(name)
        graph = instance.build()
        paper = instance.paper.get("table_6_6", {})
        params = GAParameters(
            population_size=40, generations=generations,
        )
        result = ga_treewidth(graph, params, rng=random.Random(42))
        rows.append([
            name + provenance_flag(instance),
            graph.num_vertices,
            graph.num_edges,
            result.best_fitness,
            paper.get("ga_min"),
            paper.get("best_known_ub"),
            result.evaluations,
        ])
    return rows


def test_table_6_6(benchmark):
    rows = benchmark.pedantic(run_table_6_6, rounds=1, iterations=1)
    report(
        "table_6_6",
        "Table 6.6 — GA-tw final results (* = synthetic stand-in)",
        ["graph", "|V|", "|E|", "GA width", "paper GA min",
         "paper best ub", "evaluations"],
        rows,
    )
    by_name = {row[0].rstrip("*"): row for row in rows}
    assert by_name["queen5_5"][3] == 18
    assert by_name["myciel3"][3] == 5
    assert by_name["myciel4"][3] == 10
    assert by_name["myciel5"][3] <= 21
    # exact families stay within ~25% of the paper's full-scale GA
    for name in ("queen6_6", "queen7_7", "myciel6"):
        measured = by_name[name][3]
        paper_min = by_name[name][4]
        assert measured <= paper_min * 1.25 + 2, (name, measured, paper_min)
