"""Table 5.2 — A*-tw on n×n grid graphs.

The treewidth of the n×n grid is n (folklore; thesis §5.4.2).  The
thesis fixes grids up to 6×6 within one hour (C++); under Python-scale
budgets we assert exactness up to 5×5 and report whatever the budget
allows beyond that — the shape (small grids exact, larger ones bounded)
is the reproduced result.
"""

from __future__ import annotations

from repro.hypergraph.generators import grid_graph
from repro.instances import get_instance
from repro.search import SearchBudget, astar_treewidth

from _harness import report, scale

GRID_SIZES = [2, 3, 4, 5, 6, 7]


def run_table_5_2() -> list[list]:
    rows = []
    for n in GRID_SIZES:
        instance = get_instance(f"grid{n}")
        paper = instance.paper["table_5_2"]
        graph = grid_graph(n)
        budget = SearchBudget(
            max_nodes=int(4000 * scale()), max_seconds=30 * scale()
        )
        result = astar_treewidth(graph, budget=budget)
        rows.append([
            f"grid{n}",
            graph.num_vertices,
            graph.num_edges,
            result.lower_bound,
            result.upper_bound,
            result.width if result.exact else
            f"[{result.lower_bound},{result.upper_bound}]",
            result.exact,
            paper["astar"],
            paper["astar_exact"],
            n,  # true treewidth
        ])
    return rows


def test_table_5_2(benchmark):
    rows = benchmark.pedantic(run_table_5_2, rounds=1, iterations=1)
    report(
        "table_5_2",
        "Table 5.2 — A*-tw on grid graphs (tw(n x n) = n)",
        ["graph", "|V|", "|E|", "lb", "ub", "A*-tw", "exact",
         "paper A*", "paper exact", "true tw"],
        rows,
    )
    for row in rows:
        n = row[9]
        if n <= 5:
            assert row[6] is True and row[5] == n, row
        if row[6] is True:
            assert row[5] == n, row  # whenever exact, it must equal n
