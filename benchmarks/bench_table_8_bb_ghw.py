"""Tables 8.1–8.2 — BB-ghw on CSP hypergraph library instances.

The thesis' result shape: BB-ghw *fixes* the exact generalized hypertree
width of some benchmark hypergraphs (small members of the structured
families) and returns improved upper bounds plus proven lower bounds on
the rest.  The concrete table rows were truncated in our source, so the
reproduction asserts the family-level facts that are fully determined:

* ghw(adder_n) = 2 for n >= 2 — fixed exactly on small adders,
* ghw(clique_n) = ceil(n/2) — fixed exactly on small cliques,
* ghw(grid2d_4) small and fixed,
* larger instances produce consistent anytime bounds under budget.
"""

from __future__ import annotations

from repro.instances import get_instance
from repro.search import SearchBudget, branch_and_bound_ghw

from _harness import provenance_flag, report, scale

EXACT_INSTANCES = [
    "adder_5", "adder_10", "adder_15",
    "clique_6", "clique_8", "clique_10",
    "grid2d_4",
]
BUDGETED_INSTANCES = ["bridge_10", "grid2d_6", "b06", "clique_15"]


def run_tables_8() -> list[list]:
    rows = []
    for name in EXACT_INSTANCES + BUDGETED_INSTANCES:
        instance = get_instance(name)
        hypergraph = instance.build()
        budget = SearchBudget(
            max_nodes=int(3000 * scale()), max_seconds=20 * scale()
        )
        result = branch_and_bound_ghw(hypergraph, budget=budget)
        rows.append([
            name + provenance_flag(instance),
            hypergraph.num_vertices,
            hypergraph.num_edges,
            result.lower_bound,
            result.upper_bound,
            result.exact,
            result.stats.nodes_expanded,
        ])
    return rows


def test_tables_8(benchmark):
    rows = benchmark.pedantic(run_tables_8, rounds=1, iterations=1)
    report(
        "table_8_bb_ghw",
        "Tables 8.1-8.2 — BB-ghw exact ghw and anytime bounds "
        "(* = synthetic stand-in)",
        ["hypergraph", "|V|", "|H|", "lb", "ub", "exact", "nodes"],
        rows,
    )
    by_name = {row[0].rstrip("*"): row for row in rows}
    # Exactly-known family values:
    for name in ("adder_5", "adder_10", "adder_15"):
        assert by_name[name][5] is True and by_name[name][4] == 2, name
    for name, n in (("clique_6", 6), ("clique_8", 8), ("clique_10", 10)):
        assert by_name[name][5] is True and by_name[name][4] == n // 2
    assert by_name["grid2d_4"][5] is True
    # Anytime rows stay bracketed.
    for name in BUDGETED_INSTANCES:
        row = by_name[name]
        assert row[3] <= row[4], row
