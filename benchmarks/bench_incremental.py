"""Warm incremental re-solve vs cold from-scratch solve on an edit stream.

The workload models a live system whose constraint hypergraph drifts one
hyperedge at a time: a mutation stream alternately removes an edge (one
whose removal isolates no vertex) and re-adds it, re-solving after every
step.

* **cold** — a fresh :class:`~repro.portfolio.IncrementalSolver` on a
  copy of the edited hypergraph, ``solve()`` racing the deterministic
  portfolio from scratch (new processes, empty cover caches).
* **warm** — one long-lived solver: ``remove_edge``/``add_edge`` ship
  :class:`~repro.hypergraph.EditTicket`\\ s to the live
  :class:`~repro.setcover.bitcover.BitCoverEngine` (only touched cache
  entries invalidated), then ``resolve_incremental()`` repairs the
  previous witness ordering and runs a short seeded GA in process.

Every step's result — both arms — carries a decomposition certificate
checked by :func:`repro.verify.certify`; a step whose certificate fails
aborts the run.  Warm widths are additionally asserted to match the
cold widths whenever both arms are exact.

Acceptance: median cold/warm speedup >= 5x over the stream, enforced at
``REPRO_BENCH_SCALE >= 0.25``; the CI smoke (0.05) still certifies every
step but reports the timing only.  Results go to
``benchmarks/results/incremental.{txt,json}``.  Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_incremental.py
"""

from __future__ import annotations

import random
import statistics
import sys
import time

from repro.instances import get_instance
from repro.portfolio import IncrementalSolver

from _harness import METRICS, bench_seed, report, scale

SPEEDUP_TARGET = 5.0
COLD_BACKENDS = ["bb-ghw", "ga-ghw", "min-fill-ghw"]


def _config() -> dict:
    if scale() >= 0.25:
        return {"instance": "b06", "steps": 20, "max_nodes": 20_000}
    return {"instance": "grid2d_4", "steps": 4, "max_nodes": 1_000}


def _removable_edge(hypergraph, rng):
    """An edge whose removal leaves every vertex covered (or None)."""
    names = list(hypergraph.edges)
    rng.shuffle(names)
    for name in names:
        members = hypergraph.edges[name]
        if all(
            len(hypergraph.edges_containing(v)) > 1 for v in members
        ):
            return name
    return None


def run_incremental_benchmark() -> tuple[list[list], dict]:
    config = _config()
    hypergraph = get_instance(config["instance"]).build()
    rng = random.Random(bench_seed())
    warm_solver = IncrementalSolver(
        hypergraph, seed=bench_seed(), metrics=METRICS
    )
    base = warm_solver.solve(
        jobs=2, deterministic=True, max_nodes=config["max_nodes"],
        backends=COLD_BACKENDS,
    )
    assert base.certificate.ok

    rows: list[list] = []
    speedups: list[float] = []
    removed: tuple | None = None  # (name, members) pending re-add
    for step in range(config["steps"]):
        if removed is None:
            name = _removable_edge(hypergraph, rng)
            assert name is not None, "mutation stream ran out of edges"
            members = hypergraph.edges[name]
            warm_solver.remove_edge(name)
            removed = (name, members)
            edit = f"-{name}"
        else:
            name, members = removed
            warm_solver.add_edge(members, name=name)
            removed = None
            edit = f"+{name}"

        start = time.perf_counter()
        warm = warm_solver.resolve_incremental()
        t_warm = time.perf_counter() - start
        assert warm.warm and warm.certificate.ok, (step, edit)

        cold_solver = IncrementalSolver(
            hypergraph.copy(), seed=bench_seed(), metrics=METRICS
        )
        start = time.perf_counter()
        cold = cold_solver.solve(
            jobs=2, deterministic=True, max_nodes=config["max_nodes"],
            backends=COLD_BACKENDS,
        )
        t_cold = time.perf_counter() - start
        assert cold.certificate.ok, (step, edit)
        if warm.exact and cold.exact:
            assert warm.width == cold.width, (step, edit)

        speedup = t_cold / t_warm if t_warm > 0 else float("inf")
        speedups.append(speedup)
        rows.append([
            step, edit, warm.width, cold.width,
            t_warm * 1e3, t_cold * 1e3, speedup,
        ])
        METRICS.histogram("incremental.warm_ms").observe(t_warm * 1e3)
        METRICS.histogram("incremental.cold_ms").observe(t_cold * 1e3)

    extra = {
        "instance": config["instance"],
        "steps": config["steps"],
        "max_nodes": config["max_nodes"],
        "median_speedup": statistics.median(speedups),
        "speedup_target": SPEEDUP_TARGET,
        "base_width": base.width,
        "gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "incremental",
        "Incremental re-solve — warm resolve_incremental() vs cold portfolio",
        ["step", "edit", "warm w", "cold w", "warm ms", "cold ms",
         "speedup"],
        rows,
        extra=extra,
    )
    gate = "enforced" if extra["gate_enforced"] else "report-only at this scale"
    print(
        f"median warm-vs-cold speedup on {extra['instance']} "
        f"({extra['steps']}-step mutation stream): "
        f"{extra['median_speedup']:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x, {gate})"
    )


def _gate_ok(extra: dict) -> bool:
    if not extra["gate_enforced"]:
        return True
    return extra["median_speedup"] >= SPEEDUP_TARGET


def test_incremental_speedup(benchmark):
    rows, extra = benchmark.pedantic(
        run_incremental_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    if extra["gate_enforced"]:
        assert extra["median_speedup"] >= SPEEDUP_TARGET


if __name__ == "__main__":
    bench_rows, bench_extra = run_incremental_benchmark()
    _report(bench_rows, bench_extra)
    sys.exit(0 if _gate_ok(bench_extra) else 1)
