"""Table 6.3 — grid over crossover rate x mutation rate in GA-tw.

The thesis tries pc ∈ {0.8, 0.9, 1.0} x pm ∈ {0.01, 0.1, 0.3} (POS +
ISM) and selects pc = 1.0, pm = 0.3 for its final runs.  We reproduce
the grid at reduced scale and assert the shape that motivated the
choice: the pc = 1.0 / pm = 0.3 cell is within one width unit of the
best cell on average.
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, ga_treewidth
from repro.instances import get_instance

from _harness import report, scale

INSTANCES = ["games120", "queen7_7"]
CROSSOVER_RATES = [0.8, 0.9, 1.0]
MUTATION_RATES = [0.01, 0.1, 0.3]
RUNS = 3


def run_rate_grid() -> list[list]:
    rows = []
    generations = max(10, int(25 * scale()))
    for name in INSTANCES:
        graph = get_instance(name).build()
        for pc in CROSSOVER_RATES:
            for pm in MUTATION_RATES:
                widths = []
                for run in range(RUNS):
                    params = GAParameters(
                        population_size=30,
                        generations=generations,
                        crossover_rate=pc,
                        mutation_rate=pm,
                    )
                    result = ga_treewidth(
                        graph, params, rng=random.Random(run * 13 + 1)
                    )
                    widths.append(result.best_fitness)
                rows.append([
                    name, pc, pm,
                    sum(widths) / len(widths), min(widths), max(widths),
                ])
    return rows


def test_table_6_3(benchmark):
    rows = benchmark.pedantic(run_rate_grid, rounds=1, iterations=1)
    report(
        "table_6_3",
        "Table 6.3 — crossover rate x mutation rate grid (GA-tw)",
        ["graph", "pc", "pm", "avg", "min", "max"],
        rows,
    )
    by_cell: dict[tuple, list[float]] = {}
    for _name, pc, pm, mean, _mn, _mx in rows:
        by_cell.setdefault((pc, pm), []).append(mean)
    cell_mean = {cell: sum(v) / len(v) for cell, v in by_cell.items()}
    best = min(cell_mean.values())
    assert cell_mean[(1.0, 0.3)] <= best + 2.0  # the thesis' chosen cell
