"""Table 6.5 — tournament selection group size comparison in GA-tw.

The thesis compares s ∈ {2, 3, 4} on large populations and finds s = 3
or 4 best.  We reproduce the comparison at reduced scale and assert the
shape: stronger selection pressure (s >= 3) is no worse than s = 2.
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, ga_treewidth
from repro.instances import get_instance

from _harness import report, scale

INSTANCES = ["queen7_7", "games120"]
GROUP_SIZES = [2, 3, 4]
RUNS = 3


def run_tournament_comparison() -> list[list]:
    rows = []
    generations = max(10, int(25 * scale()))
    for name in INSTANCES:
        graph = get_instance(name).build()
        for s in GROUP_SIZES:
            widths = []
            for run in range(RUNS):
                params = GAParameters(
                    population_size=40,
                    generations=generations,
                    tournament_size=s,
                )
                result = ga_treewidth(
                    graph, params, rng=random.Random(run * 23 + 9)
                )
                widths.append(result.best_fitness)
            rows.append([
                name, s,
                sum(widths) / len(widths), min(widths), max(widths),
            ])
    return rows


def test_table_6_5(benchmark):
    rows = benchmark.pedantic(run_tournament_comparison, rounds=1,
                              iterations=1)
    report(
        "table_6_5",
        "Table 6.5 — tournament group size comparison (GA-tw)",
        ["graph", "s", "avg", "min", "max"],
        rows,
    )
    by_s: dict[int, list[float]] = {}
    for _name, s, mean, _mn, _mx in rows:
        by_s.setdefault(s, []).append(mean)
    mean_of = {s: sum(v) / len(v) for s, v in by_s.items()}
    assert min(mean_of[3], mean_of[4]) <= mean_of[2] + 1.0
