"""Table 6.2 — comparison of the six mutation operators in GA-tw.

The thesis runs each operator (pc = 0%, pm = 100%) and finds ISM and EM
far ahead of the segment-scrambling operators (SM, SIM, DM, IVM).  We
reproduce the ranking at reduced scale and assert that shape.
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, MUTATION_OPERATORS, ga_treewidth
from repro.instances import get_instance

from _harness import report, scale

INSTANCES = ["games120", "myciel5", "queen7_7"]
RUNS = 3


def run_mutation_comparison() -> list[list]:
    rows = []
    generations = max(10, int(25 * scale()))
    for name in INSTANCES:
        graph = get_instance(name).build()
        for operator in sorted(MUTATION_OPERATORS):
            widths = []
            for run in range(RUNS):
                params = GAParameters(
                    population_size=30,
                    generations=generations,
                    crossover_rate=0.0,
                    mutation_rate=1.0,
                    mutation=operator,
                )
                result = ga_treewidth(
                    graph, params, rng=random.Random(run * 17 + 3)
                )
                widths.append(result.best_fitness)
            rows.append([
                name, operator,
                sum(widths) / len(widths), min(widths), max(widths),
            ])
    return rows


def test_table_6_2(benchmark):
    rows = benchmark.pedantic(run_mutation_comparison, rounds=1,
                              iterations=1)
    report(
        "table_6_2",
        "Table 6.2 — mutation operator comparison (GA-tw, pc=0, pm=1)",
        ["graph", "mutation", "avg", "min", "max"],
        rows,
    )
    avg = {}
    for name, operator, mean, _mn, _mx in rows:
        avg.setdefault(operator, []).append(mean)
    mean_of = {op: sum(v) / len(v) for op, v in avg.items()}
    # Paper shape: the point operators (ISM, EM) beat the segment
    # scramblers (IVM, DM, SIM, SM).
    best_point = min(mean_of["ISM"], mean_of["EM"])
    assert best_point <= mean_of["IVM"]
    assert best_point <= mean_of["DM"]
    assert best_point <= mean_of["SM"]
