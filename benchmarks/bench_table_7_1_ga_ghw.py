"""Table 7.1 — GA-ghw on CSP hypergraph library instances.

The thesis compares GA-ghw's upper bounds against the previously
published best (hypertree-decomposition based) bounds: the GA improves
the circuit instances (b06...c880), matches mid-size grids, and loses on
adder / bridge / clique (where structure-aware methods shine).

We reproduce the full instance list at reduced GA scale.  Shape
asserted: exact-family rows (adder, bridge, clique, grid2d) land close
to the paper's GA result — including the *regressions* (our GA, like the
paper's, does worse than the prior bound on adder and bridge).
"""

from __future__ import annotations

import random

from repro.bounds import min_fill_ordering
from repro.decomposition import ghw_ordering_width
from repro.genetic import GAParameters, ga_ghw
from repro.instances import get_instance

from _harness import provenance_flag, report, scale

BENCH_INSTANCES = [
    "adder_75", "b06", "b08", "b09", "b10",
    "bridge_50", "c499", "clique_20", "grid2d_20", "grid3d_8",
]


def run_table_7_1() -> list[list]:
    rows = []
    generations = max(15, int(30 * scale()))
    for name in BENCH_INSTANCES:
        instance = get_instance(name)
        hypergraph = instance.build()
        paper = instance.paper.get("table_7_1", {})
        params = GAParameters(
            population_size=24, generations=generations,
        )
        result = ga_ghw(hypergraph, params, rng=random.Random(11))
        min_fill_ub = ghw_ordering_width(
            hypergraph, min_fill_ordering(hypergraph)
        )
        rows.append([
            name + provenance_flag(instance),
            hypergraph.num_vertices,
            hypergraph.num_edges,
            result.best_fitness,
            min_fill_ub,
            paper.get("ga_min"),
            paper.get("prior_best_ub"),
        ])
    return rows


def test_table_7_1(benchmark):
    rows = benchmark.pedantic(run_table_7_1, rounds=1, iterations=1)
    report(
        "table_7_1",
        "Table 7.1 — GA-ghw upper bounds (* = synthetic stand-in; "
        "min-fill column = greedy-cover width of the min-fill ordering)",
        ["hypergraph", "|V|", "|H|", "GA-ghw", "min-fill ub",
         "paper GA min", "prior best ub"],
        rows,
    )
    by_name = {row[0].rstrip("*"): row for row in rows}
    # Shape: the GA regresses vs the structure-aware prior bound on the
    # adder and bridge families (paper: 3 vs 2 and 6 vs 2)...
    assert by_name["adder_75"][3] > by_name["adder_75"][6]
    assert by_name["bridge_50"][3] > by_name["bridge_50"][6]
    # ...while clique_20's GA result sits within two of the optimum 10.
    assert by_name["clique_20"][3] <= 12
    # grid2d/grid3d at Python-scale budgets sit far above the paper's
    # 4M-evaluation GA — reported, not asserted (see EXPERIMENTS.md);
    # the min-fill column shows the structured baseline they approach
    # as REPRO_BENCH_SCALE grows.
