"""Ablation benchmarks for the design choices DESIGN.md calls out.

Five ablations, each measuring expanded search nodes (the thesis'
implicit efficiency metric) with a feature on vs. off at equal budgets:

1. reductions (simplicial / strongly-almost-simplicial) in A*-tw,
2. pruning rule PR 2 in A*-tw,
3. the lower-bound heuristic in A*-tw (mmw vs. both vs. none),
4. the transposition table (extension) in A*-tw,
5. greedy vs. exact set covering in the ghw ordering evaluation.
"""

from __future__ import annotations

import random

from repro.decomposition import ghw_ordering_width
from repro.instances import get_instance
from repro.search import SearchBudget, astar_treewidth
from repro.setcover import exact_set_cover

from _harness import report, scale


def run_reduction_ablation() -> list[list]:
    rows = []
    budget = SearchBudget(max_nodes=int(20000 * scale()),
                          max_seconds=30 * scale())
    for name in ("myciel4", "queen5_5", "grid5"):
        graph = get_instance(name).build()
        for use_reductions in (True, False):
            result = astar_treewidth(
                graph, budget=budget, use_reductions=use_reductions
            )
            rows.append([
                name, "on" if use_reductions else "off",
                result.width if result.exact else None,
                result.stats.nodes_expanded,
            ])
    return rows


def test_ablation_reductions(benchmark):
    rows = benchmark.pedantic(run_reduction_ablation, rounds=1, iterations=1)
    report(
        "ablation_reductions",
        "Ablation — simplicial/SAS reductions in A*-tw",
        ["graph", "reductions", "treewidth", "nodes expanded"],
        rows,
    )
    # Same widths whenever both runs are exact.
    by_graph: dict[str, dict[str, list]] = {}
    for name, flag, width, nodes in rows:
        by_graph.setdefault(name, {})[flag] = (width, nodes)
    for name, result in by_graph.items():
        w_on, _ = result["on"]
        w_off, _ = result["off"]
        if w_on is not None and w_off is not None:
            assert w_on == w_off, name


def run_pr2_ablation() -> list[list]:
    rows = []
    budget = SearchBudget(max_nodes=int(20000 * scale()),
                          max_seconds=30 * scale())
    for name in ("myciel4", "queen5_5", "grid5"):
        graph = get_instance(name).build()
        for use_pr2 in (True, False):
            result = astar_treewidth(graph, budget=budget, use_pr2=use_pr2)
            rows.append([
                name, "on" if use_pr2 else "off",
                result.width if result.exact else None,
                result.stats.nodes_expanded,
            ])
    return rows


def test_ablation_pr2(benchmark):
    rows = benchmark.pedantic(run_pr2_ablation, rounds=1, iterations=1)
    report(
        "ablation_pr2",
        "Ablation — pruning rule PR 2 in A*-tw",
        ["graph", "PR2", "treewidth", "nodes expanded"],
        rows,
    )
    by_graph: dict[str, dict[str, tuple]] = {}
    for name, flag, width, nodes in rows:
        by_graph.setdefault(name, {})[flag] = (width, nodes)
    for name, result in by_graph.items():
        w_on, _ = result["on"]
        w_off, _ = result["off"]
        if w_on is not None and w_off is not None:
            assert w_on == w_off, name


def run_lower_bound_ablation() -> list[list]:
    rows = []
    budget = SearchBudget(max_nodes=int(20000 * scale()),
                          max_seconds=30 * scale())
    for name in ("myciel4", "queen5_5"):
        graph = get_instance(name).build()
        for mode in ("both", "mmw", "none"):
            result = astar_treewidth(
                graph, budget=budget, child_lower_bound=mode
            )
            rows.append([
                name, mode,
                result.width if result.exact else None,
                result.stats.nodes_expanded,
            ])
    return rows


def test_ablation_lower_bound(benchmark):
    rows = benchmark.pedantic(run_lower_bound_ablation, rounds=1,
                              iterations=1)
    report(
        "ablation_lower_bound",
        "Ablation — child lower bound heuristic in A*-tw",
        ["graph", "h(n)", "treewidth", "nodes expanded"],
        rows,
    )
    # A stronger heuristic expands no more nodes than no heuristic on
    # instances both solve exactly.
    by_graph: dict[str, dict[str, tuple]] = {}
    for name, mode, width, nodes in rows:
        by_graph.setdefault(name, {})[mode] = (width, nodes)
    for name, result in by_graph.items():
        if result["both"][0] is not None and result["none"][0] is not None:
            assert result["both"][1] <= result["none"][1] * 1.5 + 50, name


def run_memoization_ablation() -> list[list]:
    rows = []
    budget = SearchBudget(max_nodes=int(20000 * scale()),
                          max_seconds=30 * scale())
    for name in ("queen5_5", "myciel4", "grid5"):
        graph = get_instance(name).build()
        for memoize in (False, True):
            result = astar_treewidth(graph, budget=budget, memoize=memoize)
            rows.append([
                name, "on" if memoize else "off",
                result.width if result.exact else None,
                result.stats.nodes_expanded,
            ])
    return rows


def test_ablation_memoization(benchmark):
    rows = benchmark.pedantic(run_memoization_ablation, rounds=1,
                              iterations=1)
    report(
        "ablation_memoization",
        "Ablation — transposition table (extension) in A*-tw",
        ["graph", "memoize", "treewidth", "nodes expanded"],
        rows,
    )
    by_graph: dict[str, dict[str, tuple]] = {}
    for name, flag, width, nodes in rows:
        by_graph.setdefault(name, {})[flag] = (width, nodes)
    for name, result in by_graph.items():
        w_off, n_off = result["off"]
        w_on, n_on = result["on"]
        if w_off is not None and w_on is not None:
            assert w_off == w_on, name
            assert n_on <= n_off, name  # dominance never hurts


def run_cover_ablation() -> list[list]:
    rows = []
    rng = random.Random(0)
    for name in ("adder_25", "clique_15", "grid2d_8", "b06"):
        hypergraph = get_instance(name).build()
        ordering = hypergraph.vertex_list()
        rng.shuffle(ordering)
        greedy_width = ghw_ordering_width(hypergraph, ordering)
        exact_width = ghw_ordering_width(
            hypergraph, ordering, cover_function=exact_set_cover
        )
        rows.append([name, greedy_width, exact_width])
    return rows


def test_ablation_cover(benchmark):
    rows = benchmark.pedantic(run_cover_ablation, rounds=1, iterations=1)
    report(
        "ablation_cover",
        "Ablation — greedy vs exact set covering in ghw evaluation",
        ["hypergraph", "greedy width", "exact width"],
        rows,
    )
    for name, greedy_width, exact_width in rows:
        assert exact_width <= greedy_width, name
