"""Balanced-separator decomposition benchmark: scaling and width gates.

Two properties of ``repro.parallel.balanced_ghw`` are measured:

* **Scaling** (enforced at ``REPRO_BENCH_SCALE >= 0.25`` on machines
  with >= 4 cores, report-only otherwise): the median single-instance
  speedup of 4 workers over 1 worker on the large grid / DIMACS
  instances is at least 1.8x.  Deterministic mode pins the work, so the
  ratio isolates the pool's parallelism; on the single-core CI box the
  ratio is honestly below 1 (process overhead) and the gate reports
  only.
* **Width domination** (always enforced): on the Table 8/9 instance
  set the balanced width matches or beats the sequential deterministic
  portfolio's width under a comparable budget — splitting on balanced
  separators must not cost width.

Every decomposition the bench touches is re-certified with
``check_ghd`` (always enforced — a certification failure is a bug, not
a performance regression).

Results go to ``benchmarks/results/balanced.{txt,json}``.  Runs
standalone too::

    PYTHONPATH=src python benchmarks/bench_balanced.py
"""

from __future__ import annotations

import os
import statistics
import sys
import time

from repro.instances import get_instance
from repro.parallel import BalancedConfig, balanced_ghw
from repro.parallel.balanced import as_hypergraph
from repro.portfolio import run_portfolio
from repro.verify import check_ghd

from _harness import bench_seed, report, scale

# The scaling set: large grids plus the lifted DIMACS queen graph.
SCALING_INSTANCES = ["grid2d_6", "grid2d_10"]
SCALING_INSTANCES_FULL = ["bridge_10", "queen5_5"]

# The Table 8/9 set (bench_table_8_bb_ghw / bench_table_9_astar_ghw).
EXACT_INSTANCES = [
    "adder_5", "adder_10", "adder_15",
    "clique_6", "clique_8", "clique_10",
    "grid2d_4",
]
BUDGETED_INSTANCES = ["bridge_10", "grid2d_6", "b06", "clique_15"]


def _certified(result, hypergraph) -> bool:
    return not check_ghd(
        result.decomposition, hypergraph, claimed_width=result.width
    )


def _scaling_rows() -> tuple[list[list], list[float], bool]:
    instances = list(SCALING_INSTANCES)
    if scale() >= 0.25:
        instances += SCALING_INSTANCES_FULL
    rows, speedups, all_certified = [], [], True
    for name in instances:
        hypergraph = as_hypergraph(get_instance(name).build())
        timings = {}
        widths = {}
        for workers in (1, 4):
            config = BalancedConfig(
                workers=workers,
                deterministic=True,
                max_subproblems=int(4000 * max(scale(), 0.05)) or 200,
                seed=bench_seed(),
            )
            start = time.monotonic()
            result = balanced_ghw(hypergraph, config)
            timings[workers] = time.monotonic() - start
            widths[workers] = result.width
            all_certified &= _certified(result, hypergraph)
            rows.append([
                "scaling", name, f"balanced-w{workers}", result.width,
                result.stats.get("parallel.steals", 0),
                round(timings[workers], 3),
            ])
        # Deterministic mode: same work, same widths, any worker count.
        assert widths[1] == widths[4], (name, widths)
        speedups.append(timings[1] / max(timings[4], 1e-9))
    return rows, speedups, all_certified


def _domination_rows() -> tuple[list[list], bool, bool]:
    instances = list(EXACT_INSTANCES)
    if scale() >= 0.25:
        instances += BUDGETED_INSTANCES
    else:
        instances += ["grid2d_6", "b06"]
    budget = max(5.0, 30.0 * scale())
    rows, dominated, all_certified = [], True, True
    for name in instances:
        structure = get_instance(name).build()
        hypergraph = as_hypergraph(structure)
        balanced = balanced_ghw(
            hypergraph,
            BalancedConfig(
                deterministic=True,
                max_subproblems=int(4000 * max(scale(), 0.05)) or 200,
                seed=bench_seed(),
            ),
        )
        all_certified &= _certified(balanced, hypergraph)
        race = run_portfolio(
            structure,
            jobs=1,
            budget_seconds=budget,
            seed=bench_seed(),
            deterministic=True,
            metric="ghw",
        )
        if balanced.width > race.width:
            dominated = False
        rows.append([
            "domination", name, "balanced", balanced.width,
            balanced.stats.get("parallel.splits", 0),
            round(balanced.elapsed_seconds, 3),
        ])
        rows.append([
            "domination", name, "portfolio-seq", race.width, "-",
            round(race.elapsed_seconds, 3),
        ])
    return rows, dominated, all_certified


def run_balanced_benchmark() -> tuple[list[list], dict]:
    scaling_rows, speedups, cert_a = _scaling_rows()
    domination_rows, dominated, cert_b = _domination_rows()
    median_speedup = statistics.median(speedups) if speedups else 0.0
    cores = os.cpu_count() or 1
    scaling_enforced = scale() >= 0.25 and cores >= 4
    extra = {
        "median_speedup_4_workers": round(median_speedup, 3),
        "speedups": [round(s, 3) for s in speedups],
        "scaling_gate_enforced": scaling_enforced,
        "scaling_gate_pass": median_speedup >= 1.8,
        "width_domination": dominated,
        "all_certified": cert_a and cert_b,
        "cpu_cores": cores,
    }
    return scaling_rows + domination_rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "balanced",
        "Balanced-separator splitting: 4-worker scaling and width "
        "domination vs the sequential portfolio",
        ["gate", "instance", "run", "width", "steals/splits", "seconds"],
        rows,
        extra=extra,
    )
    gate = (
        "enforced" if extra["scaling_gate_enforced"]
        else f"report-only ({extra['cpu_cores']} cores at this scale)"
    )
    print(f"median 4-worker speedup: {extra['median_speedup_4_workers']}x "
          f"({gate})")
    print(f"width domination: {extra['width_domination']}")
    print(f"all decompositions certified: {extra['all_certified']}")


def _gates_pass(extra: dict) -> bool:
    if not extra["all_certified"] or not extra["width_domination"]:
        return False
    if extra["scaling_gate_enforced"] and not extra["scaling_gate_pass"]:
        return False
    return True


def test_balanced_benchmark(benchmark):
    rows, extra = benchmark.pedantic(
        run_balanced_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    assert extra["all_certified"]
    assert extra["width_domination"]
    if extra["scaling_gate_enforced"]:
        assert extra["scaling_gate_pass"]


if __name__ == "__main__":
    rows, extra = run_balanced_benchmark()
    _report(rows, extra)
    sys.exit(0 if _gates_pass(extra) else 1)
