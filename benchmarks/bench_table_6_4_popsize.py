"""Table 6.4 — population size comparison in GA-tw.

The thesis compares populations of 100 / 200 / 1000 / 2000 individuals
at a fixed generation count and finds larger populations better.  We
reproduce the comparison at a *fixed evaluation budget per size tier*
scaled to Python (population x generations held roughly constant would
hide the effect the thesis measures, so like the thesis we fix
generations and vary the population).
"""

from __future__ import annotations

import random

from repro.genetic import GAParameters, ga_treewidth
from repro.instances import get_instance

from _harness import report, scale

INSTANCES = ["queen7_7", "games120"]
POPULATION_SIZES = [10, 20, 40, 80]
RUNS = 3


def run_population_comparison() -> list[list]:
    rows = []
    generations = max(10, int(20 * scale()))
    for name in INSTANCES:
        graph = get_instance(name).build()
        for size in POPULATION_SIZES:
            widths = []
            for run in range(RUNS):
                params = GAParameters(
                    population_size=size, generations=generations,
                )
                result = ga_treewidth(
                    graph, params, rng=random.Random(run * 11 + 5)
                )
                widths.append(result.best_fitness)
            rows.append([
                name, size,
                sum(widths) / len(widths), min(widths), max(widths),
            ])
    return rows


def test_table_6_4(benchmark):
    rows = benchmark.pedantic(run_population_comparison, rounds=1,
                              iterations=1)
    report(
        "table_6_4",
        "Table 6.4 — population size comparison (GA-tw)",
        ["graph", "population", "avg", "min", "max"],
        rows,
    )
    # Paper shape: the largest population is at least as good as the
    # smallest on average.
    by_size: dict[int, list[float]] = {}
    for _name, size, mean, _mn, _mx in rows:
        by_size.setdefault(size, []).append(mean)
    mean_of = {s: sum(v) / len(v) for s, v in by_size.items()}
    assert mean_of[POPULATION_SIZES[-1]] <= mean_of[POPULATION_SIZES[0]]
