"""Table 6.1 — comparison of the six crossover operators in GA-tw.

The thesis runs each operator five times (pc = 100%, pm = 0%) on eight
DIMACS graphs and finds position-based crossover (POS) best on every
instance.  We reproduce the ranking experiment at reduced scale on a
subset of those instances and assert the headline shape: POS beats the
weak operators (CX, AP, OX1) on average.
"""

from __future__ import annotations

import random

from repro.genetic import CROSSOVER_OPERATORS, GAParameters, ga_treewidth
from repro.instances import get_instance

from _harness import report, scale

INSTANCES = ["games120", "myciel5", "queen7_7"]
RUNS = 3


def run_crossover_comparison() -> list[list]:
    rows = []
    generations = max(10, int(25 * scale()))
    for name in INSTANCES:
        graph = get_instance(name).build()
        for operator in sorted(CROSSOVER_OPERATORS):
            widths = []
            for run in range(RUNS):
                params = GAParameters(
                    population_size=30,
                    generations=generations,
                    crossover_rate=1.0,
                    mutation_rate=0.0,
                    crossover=operator,
                )
                result = ga_treewidth(
                    graph, params, rng=random.Random(run * 31 + 7)
                )
                widths.append(result.best_fitness)
            rows.append([
                name, operator,
                sum(widths) / len(widths), min(widths), max(widths),
            ])
    return rows


def test_table_6_1(benchmark):
    rows = benchmark.pedantic(run_crossover_comparison, rounds=1,
                              iterations=1)
    report(
        "table_6_1",
        "Table 6.1 — crossover operator comparison (GA-tw, pm=0, pc=1)",
        ["graph", "crossover", "avg", "min", "max"],
        rows,
    )
    # Headline shape: POS dominates the weak operators on average.
    avg = {}
    for name, operator, mean, _mn, _mx in rows:
        avg.setdefault(operator, []).append(mean)
    mean_of = {op: sum(v) / len(v) for op, v in avg.items()}
    assert mean_of["POS"] <= mean_of["CX"]
    assert mean_of["POS"] <= mean_of["AP"]
    assert mean_of["POS"] <= mean_of["OX1"]
