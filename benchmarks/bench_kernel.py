"""Graph vs. BitGraph kernel benchmarks for the elimination hot paths.

Two workloads, per registered instance:

* ``minfill`` — the min-fill ordering.  The baseline is the set-kernel
  reference implementation (incremental fill counts over ``Graph``, as
  the repo shipped before the bitset kernel); the contender is the
  production :func:`repro.bounds.upper.min_fill_ordering`, which runs on
  mask snapshots of :class:`BitGraph`.  Both produce the identical
  ordering (asserted).
* ``astar`` — A*-tw child expansion: the same search, same node budget,
  under ``kernel="set"`` vs ``kernel="bit"``.  Node counts and widths are
  asserted equal, so the time ratio is the per-expansion speedup
  (eliminate/restore, PR 2 sibling filtering, reductions, and the
  lower-bound heuristic with its bitmask-keyed caches).

Acceptance: the median speedup across both workloads is >= 3x.  The
assertion is enforced at ``REPRO_BENCH_SCALE >= 0.25``; starved budgets
(e.g. the CI smoke at 0.05) still run and report, but timing noise at
that size is not a meaningful gate.  Results go to
``benchmarks/results/kernel.{txt,json}``.  Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_kernel.py
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.bounds.upper import min_fill_ordering
from repro.hypergraph.bitgraph import as_bitgraph
from repro.instances import get_instance
from repro.search import SearchBudget
from repro.search.astar_tw import astar_treewidth

from _harness import report, scale

SPEEDUP_TARGET = 3.0


def _instances() -> list[str]:
    names = ["myciel4", "queen5_5", "grid6", "myciel5"]
    if scale() >= 0.25:
        names += ["queen6_6"]
    if scale() >= 1.0:
        names += ["queen7_7", "miles1000", "anna"]
    return names


def minfill_set_reference(graph, rng=None):
    """The pre-kernel set-based min-fill (incremental recount on Graph)."""
    fill = {v: graph.fill_in_count(v) for v in graph.vertex_list()}
    ordering = []
    while len(graph) > 0:
        best_fill = min(fill.values())
        candidates = [v for v, f in fill.items() if f == best_fill]
        if rng is not None and len(candidates) > 1:
            vertex = candidates[rng.randrange(len(candidates))]
        else:
            vertex = min(candidates, key=repr)
        ordering.append(vertex)
        affected = graph.neighbors(vertex)
        record = graph.eliminate(vertex)
        for a, b in record.fill_edges:
            affected.add(a)
            affected.add(b)
            affected |= graph.neighbors(a) & graph.neighbors(b)
        del fill[vertex]
        for u in affected:
            if u in fill:
                fill[u] = graph.fill_in_count(u)
    return ordering


def _best_of(repeats, fn):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_kernel_benchmark() -> tuple[list[list], dict]:
    repeats = 2 if scale() >= 0.25 else 1
    # The A* comparison needs enough expansions to amortize the shared
    # setup (initial bounds + heuristic orderings are identical work for
    # both kernels); below the gate scale a starved budget keeps the CI
    # smoke fast, and the ratio is reported but not enforced.
    node_budget = 3000 if scale() >= 0.25 else max(200, int(3000 * scale()))
    rows: list[list] = []
    speedups: list[float] = []
    for name in _instances():
        base = get_instance(name).build()
        bit = as_bitgraph(base)

        t_set, o_set = _best_of(
            repeats, lambda: minfill_set_reference(base.copy())
        )
        t_bit, o_bit = _best_of(repeats, lambda: min_fill_ordering(bit))
        assert o_set == o_bit, name  # kernels must agree
        speedup = t_set / t_bit if t_bit > 0 else float("inf")
        speedups.append(speedup)
        rows.append([name, "minfill", t_set * 1e3, t_bit * 1e3, speedup])

        budget = SearchBudget(max_nodes=node_budget)
        # Single timed run: the workload is deterministic and runs for
        # seconds at the gate scale, so best-of adds cost, not signal.
        t_set, r_set = _best_of(
            1, lambda: astar_treewidth(base, budget=budget, kernel="set")
        )
        t_bit, r_bit = _best_of(
            1, lambda: astar_treewidth(base, budget=budget, kernel="bit")
        )
        assert r_set.stats.nodes_expanded == r_bit.stats.nodes_expanded, name
        assert r_set.upper_bound == r_bit.upper_bound, name
        speedup = t_set / t_bit if t_bit > 0 else float("inf")
        speedups.append(speedup)
        rows.append([name, "astar", t_set * 1e3, t_bit * 1e3, speedup])
    extra = {
        "median_speedup": statistics.median(speedups),
        "speedup_target": SPEEDUP_TARGET,
        "astar_node_budget": node_budget,
        "gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "kernel",
        "Elimination kernel — Graph (sets) vs BitGraph (bitmasks)",
        ["graph", "workload", "set ms", "bit ms", "speedup"],
        rows,
        extra=extra,
    )
    gate = "enforced" if extra["gate_enforced"] else "report-only at this scale"
    print(
        f"median speedup: {extra['median_speedup']:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x, {gate})"
    )


def test_kernel_speedup(benchmark):
    rows, extra = benchmark.pedantic(
        run_kernel_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    if extra["gate_enforced"]:
        assert extra["median_speedup"] >= SPEEDUP_TARGET


if __name__ == "__main__":
    rows, extra = run_kernel_benchmark()
    _report(rows, extra)
    ok = (not extra["gate_enforced"]) or (
        extra["median_speedup"] >= SPEEDUP_TARGET
    )
    sys.exit(0 if ok else 1)
