"""Tables 9.1–9.2 — A*-ghw on CSP hypergraph library instances.

The thesis' result shape: A*-ghw fixes the exact ghw of some instances
and — its distinctive strength versus BB-ghw — returns improved *lower*
bounds on interrupted runs (the last popped f-value is a proven bound).
The concrete table rows were truncated in our source; we reproduce the
determined family values and the lower-bound-improvement behaviour.
"""

from __future__ import annotations

from repro.bounds import ghw_lower_bound
from repro.instances import get_instance
from repro.search import SearchBudget, astar_ghw

from _harness import provenance_flag, report, scale

EXACT_INSTANCES = [
    "adder_5", "adder_10",
    "clique_6", "clique_8", "clique_10",
    "grid2d_4",
]
BUDGETED_INSTANCES = ["bridge_10", "grid2d_6", "b06", "clique_15"]


def run_tables_9() -> list[list]:
    rows = []
    for name in EXACT_INSTANCES + BUDGETED_INSTANCES:
        instance = get_instance(name)
        hypergraph = instance.build()
        static_lb = ghw_lower_bound(hypergraph)
        budget = SearchBudget(
            max_nodes=int(3000 * scale()), max_seconds=20 * scale()
        )
        result = astar_ghw(hypergraph, budget=budget)
        rows.append([
            name + provenance_flag(instance),
            hypergraph.num_vertices,
            hypergraph.num_edges,
            static_lb,
            result.lower_bound,
            result.upper_bound,
            result.exact,
            result.stats.nodes_expanded,
        ])
    return rows


def test_tables_9(benchmark):
    rows = benchmark.pedantic(run_tables_9, rounds=1, iterations=1)
    report(
        "table_9_astar_ghw",
        "Tables 9.1-9.2 — A*-ghw exact ghw and anytime lower bounds "
        "(* = synthetic stand-in)",
        ["hypergraph", "|V|", "|H|", "static lb", "A* lb", "A* ub",
         "exact", "nodes"],
        rows,
    )
    by_name = {row[0].rstrip("*"): row for row in rows}
    for name in ("adder_5", "adder_10"):
        assert by_name[name][6] is True and by_name[name][5] == 2, name
    for name, n in (("clique_6", 6), ("clique_8", 8), ("clique_10", 10)):
        assert by_name[name][6] is True and by_name[name][5] == n // 2
    # The A* anytime lower bound never falls below the static heuristic
    # bound (§5.3 / Ch. 9's improved-lower-bound claim).
    for row in rows:
        assert row[4] >= row[3], row
        assert row[4] <= row[5], row
