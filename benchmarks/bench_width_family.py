"""The width family side by side: tw vs ghw vs hw.

Not a thesis table — this is the comparison the surrounding literature
("Hypertree Decompositions: Questions and Answers") keeps making:
``ghw(H) ≤ hw(H) ≤ tw(H) + 1``, with the gap widest on clique-heavy
hypergraphs (where a single hyperedge covers what treewidth pays for
vertex by vertex).  All three are computed exactly on small instances.
"""

from __future__ import annotations

from repro.hypergraph.generators import (
    adder_hypergraph,
    clique_hypergraph,
    grid2d_hypergraph,
)
from repro.hypergraph import Hypergraph
from repro.search import (
    SearchBudget,
    astar_treewidth,
    branch_and_bound_ghw,
    hypertree_width,
)

from _harness import report, scale

INSTANCES = [
    ("clique_6", lambda: clique_hypergraph(6)),
    ("clique_8", lambda: clique_hypergraph(8)),
    ("adder_4", lambda: adder_hypergraph(4)),
    ("adder_6", lambda: adder_hypergraph(6)),
    ("grid2d_4", lambda: grid2d_hypergraph(4)),
    ("triangle", lambda: Hypergraph(
        edges={"a": {1, 2}, "b": {2, 3}, "c": {1, 3}})),
    ("path", lambda: Hypergraph(
        edges={"a": {1, 2}, "b": {2, 3}, "c": {3, 4}})),
]


def run_width_family() -> list[list]:
    rows = []
    budget = SearchBudget(max_nodes=int(4000 * scale()),
                          max_seconds=30 * scale())
    for name, factory in INSTANCES:
        h = factory()
        tw = astar_treewidth(h, budget=budget)
        ghw = branch_and_bound_ghw(h, budget=budget)
        hw, _htd = hypertree_width(h)
        rows.append([
            name,
            h.num_vertices,
            h.num_edges,
            tw.width if tw.exact else f">={tw.lower_bound}",
            ghw.width if ghw.exact else f">={ghw.lower_bound}",
            hw,
        ])
    return rows


def test_width_family(benchmark):
    rows = benchmark.pedantic(run_width_family, rounds=1, iterations=1)
    report(
        "width_family",
        "The width family: tw vs ghw vs hw (all exact)",
        ["hypergraph", "|V|", "|H|", "tw", "ghw", "hw"],
        rows,
    )
    for row in rows:
        tw, ghw, hw = row[3], row[4], row[5]
        if isinstance(tw, int) and isinstance(ghw, int):
            assert ghw <= hw <= tw + 1, row
    by_name = {row[0]: row for row in rows}
    # The headline gap: cliques have tw = n-1 but ghw = hw = ceil(n/2).
    assert by_name["clique_8"][3] == 7
    assert by_name["clique_8"][4] == 4
    assert by_name["clique_8"][5] == 4
    # Acyclic instances have hw = 1.
    assert by_name["path"][5] == 1
