"""Frozenset vs. bitmask cover engine benchmarks for the ghw hot paths.

Three workloads, per ghw table instance:

* ``covers`` — the bag-cover query stream of an elimination search:
  exact covers of the elimination bags of several random orderings plus
  greedy covers of the shrinking remaining vertex sets (the completion
  bounds).  The baseline answers it the way the pre-engine
  ``GhwSearchContext`` did — :func:`exact_set_cover` /
  :func:`greedy_set_cover` over frozensets with flat dict caches; the
  contender is :class:`~repro.setcover.bitcover.BitCoverEngine` fed the
  interned masks (what the searches hand it).  All exact sizes are
  asserted equal.  **This is the gated ≥2x median.**
* ``bb-ghw`` — the full search under ``cover="set"`` vs ``cover="bit"``:
  widths and exactness asserted identical on instances both arms close;
  end-to-end times are reported (covers share the search with graph-side
  work, so this ratio is smaller than the cover-stream ratio).
* ``ga`` — GA-ghw with the per-individual reference fitness vs. the
  incremental :class:`~repro.genetic.ga_ghw.PrefixGhwEvaluator`.  Best
  fitness, history and evaluation counts are asserted bit-identical for
  the fixed seed; the evaluations/sec ratio must exceed 1 (gated).

Acceptance: median ``covers`` speedup >= 2x and GA evals/sec ratio > 1,
both enforced at ``REPRO_BENCH_SCALE >= 0.25``; starved budgets (e.g.
the CI smoke at 0.05) still run every assertion on the answers, but the
timing gates are report-only.  Results go to
``benchmarks/results/cover.{txt,json}``.  Runs standalone too::

    PYTHONPATH=src python benchmarks/bench_cover.py
"""

from __future__ import annotations

import random
import statistics
import sys
import time

from repro.decomposition.elimination import elimination_bags
from repro.genetic.engine import GAParameters
from repro.genetic.ga_ghw import ga_ghw
from repro.instances import get_instance
from repro.search import SearchBudget, branch_and_bound_ghw
from repro.setcover import BitCoverEngine, exact_set_cover, greedy_set_cover

from _harness import METRICS, bench_seed, report, scale

SPEEDUP_TARGET = 2.0


def _instances() -> list[str]:
    names = [
        "adder_5", "adder_10", "adder_15",
        "clique_6", "clique_8", "clique_10",
        "grid2d_4",
    ]
    if scale() >= 0.25:
        names += ["grid2d_6", "bridge_10", "b06"]
    return names


def _cover_workload(hypergraph, orderings: int):
    """The (exact bags, greedy remaining-sets) query stream of a search:
    elimination bags of random orderings, and every suffix's remaining
    vertex set (what the completion bound covers)."""
    rng = random.Random(bench_seed())
    vertices = hypergraph.vertex_list()
    exact_queries: list[frozenset] = []
    greedy_queries: list[frozenset] = []
    for _ in range(orderings):
        ordering = list(vertices)
        rng.shuffle(ordering)
        exact_queries.extend(elimination_bags(hypergraph, ordering).values())
        remaining = set(vertices)
        for v in ordering:
            remaining.discard(v)
            if remaining:
                greedy_queries.append(frozenset(remaining))
    return exact_queries, greedy_queries


def _run_set_arm(hypergraph, exact_queries, greedy_queries):
    """The frozenset cover path with the flat dict caches the pre-engine
    ``GhwSearchContext`` used."""
    exact_cache: dict[frozenset, int] = {}
    greedy_cache: dict[frozenset, int] = {}
    for bag in exact_queries:
        if bag not in exact_cache:
            exact_cache[bag] = len(exact_set_cover(bag, hypergraph))
    for bag in greedy_queries:
        if bag not in greedy_cache:
            greedy_cache[bag] = len(greedy_set_cover(bag, hypergraph))
    return exact_cache


def _run_bit_arm(engine, exact_masks, greedy_masks):
    for mask in exact_masks:
        engine.exact_size(mask)
    for mask in greedy_masks:
        engine.upper_size(mask)


def run_cover_benchmark() -> tuple[list[list], dict]:
    orderings = 4 if scale() >= 0.25 else 2
    node_budget = 3000 if scale() >= 0.25 else max(200, int(3000 * scale()))
    pop, gens = (40, 40) if scale() >= 0.25 else (16, 10)
    rows: list[list] = []
    cover_speedups: list[float] = []
    ga_ratios: list[float] = []
    for name in _instances():
        hypergraph = get_instance(name).build()

        # -- covers: the raw query stream ------------------------------
        exact_queries, greedy_queries = _cover_workload(
            hypergraph, orderings
        )
        start = time.perf_counter()
        exact_ref = _run_set_arm(hypergraph, exact_queries, greedy_queries)
        t_set = time.perf_counter() - start
        engine = BitCoverEngine(hypergraph, metrics=METRICS)
        exact_masks = [engine.mask_of(bag) for bag in exact_queries]
        greedy_masks = [engine.mask_of(bag) for bag in greedy_queries]
        start = time.perf_counter()
        _run_bit_arm(engine, exact_masks, greedy_masks)
        t_bit = time.perf_counter() - start
        for bag, mask in zip(exact_queries, exact_masks):
            assert exact_ref[bag] == engine.cache.exact[mask], (name, bag)
        speedup = t_set / t_bit if t_bit > 0 else float("inf")
        cover_speedups.append(speedup)
        rows.append([name, "covers", t_set * 1e3, t_bit * 1e3, speedup])

        # -- bb-ghw: end-to-end differential ---------------------------
        budget = SearchBudget(max_nodes=node_budget)
        start = time.perf_counter()
        r_set = branch_and_bound_ghw(hypergraph, budget=budget, cover="set")
        t_set = time.perf_counter() - start
        budget = SearchBudget(max_nodes=node_budget)
        start = time.perf_counter()
        r_bit = branch_and_bound_ghw(
            hypergraph, budget=budget, cover="bit", metrics=METRICS
        )
        t_bit = time.perf_counter() - start
        if r_set.exact and r_bit.exact:
            # Exact terminations must agree on the width; budgeted runs
            # may close different subtrees first (dominance answers can
            # finish goal tests sooner) and only promise valid bounds.
            assert r_set.upper_bound == r_bit.upper_bound, name
        speedup = t_set / t_bit if t_bit > 0 else float("inf")
        rows.append([name, "bb-ghw", t_set * 1e3, t_bit * 1e3, speedup])

        # -- ga: reference vs incremental fitness ----------------------
        params = GAParameters(population_size=pop, generations=gens)
        start = time.perf_counter()
        g_ref = ga_ghw(
            hypergraph, parameters=params, rng=random.Random(bench_seed()),
            rescore_exact=False, incremental=False,
        )
        t_set = time.perf_counter() - start
        start = time.perf_counter()
        g_inc = ga_ghw(
            hypergraph, parameters=params, rng=random.Random(bench_seed()),
            rescore_exact=False, incremental=True, metrics=METRICS,
        )
        t_bit = time.perf_counter() - start
        assert g_ref.best_fitness == g_inc.best_fitness, name
        assert g_ref.history == g_inc.history, name
        assert g_ref.evaluations == g_inc.evaluations, name
        ratio = t_set / t_bit if t_bit > 0 else float("inf")
        ga_ratios.append(ratio)
        rows.append([name, "ga", t_set * 1e3, t_bit * 1e3, ratio])
        METRICS.histogram("cover.ga.evals_per_second").observe(
            g_inc.evaluations / t_bit if t_bit > 0 else 0.0
        )

    extra = {
        "median_cover_speedup": statistics.median(cover_speedups),
        "median_ga_ratio": statistics.median(ga_ratios),
        "speedup_target": SPEEDUP_TARGET,
        "orderings_per_instance": orderings,
        "bb_node_budget": node_budget,
        "ga_population": pop,
        "ga_generations": gens,
        "gate_enforced": scale() >= 0.25,
    }
    return rows, extra


def _report(rows: list[list], extra: dict) -> None:
    report(
        "cover",
        "Cover engine — frozensets (flat caches) vs bitmasks (dominance)",
        ["hypergraph", "workload", "set ms", "bit ms", "speedup"],
        rows,
        extra=extra,
    )
    gate = "enforced" if extra["gate_enforced"] else "report-only at this scale"
    print(
        f"median cover speedup: {extra['median_cover_speedup']:.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x, {gate}); "
        f"median GA evals/sec ratio: {extra['median_ga_ratio']:.2f}x "
        f"(target > 1x, {gate})"
    )


def _gate_ok(extra: dict) -> bool:
    if not extra["gate_enforced"]:
        return True
    return (
        extra["median_cover_speedup"] >= SPEEDUP_TARGET
        and extra["median_ga_ratio"] > 1.0
    )


def test_cover_speedup(benchmark):
    rows, extra = benchmark.pedantic(
        run_cover_benchmark, rounds=1, iterations=1
    )
    _report(rows, extra)
    if extra["gate_enforced"]:
        assert extra["median_cover_speedup"] >= SPEEDUP_TARGET
        assert extra["median_ga_ratio"] > 1.0


if __name__ == "__main__":
    rows, extra = run_cover_benchmark()
    _report(rows, extra)
    sys.exit(0 if _gate_ok(extra) else 1)
